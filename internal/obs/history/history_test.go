package history

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fenrir/internal/obs"
)

// fakeClock drives the store deterministically: each Tick samples at
// the current instant, and tests advance it by hand.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) tick(s *Store, d time.Duration) {
	c.advance(d)
	s.Tick()
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestDeltaMatchesRegistryNetChange is the acceptance criterion: for a
// sampled counter, delta over the full window equals the registry
// counter's net change across the same interval — exactly, even after
// the ring has wrapped and the window's start has slid forward.
func TestDeltaMatchesRegistryNetChange(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s := New(reg, Config{Retain: 4, Now: clock.now})
	c := reg.Counter("test_total")

	c.Add(100) // pre-existing total: must not count as observed change
	s.Tick()   // first sample anchors the window

	var sinceAnchor int64
	for _, inc := range []int64{2, 3, 4} {
		c.Add(inc)
		sinceAnchor += inc
		clock.tick(s, time.Second)
	}
	res, ok := s.Query("test_total", "", FnDelta, 0)
	if !ok {
		t.Fatal("query missed a sampled counter")
	}
	if !almostEqual(res.Value, float64(sinceAnchor)) {
		t.Fatalf("delta before wrap = %v, want %d", res.Value, sinceAnchor)
	}
	if res.Samples != 4 {
		t.Fatalf("samples = %d, want 4", res.Samples)
	}

	// Push the ring past capacity several times over; the window start
	// slides but absolutes must stay exact.
	window := []int64{0, 2, 3, 4} // deltas currently retained, oldest first
	for _, inc := range []int64{5, 6, 7, 8, 9} {
		c.Add(inc)
		clock.tick(s, time.Second)
		window = append(window[1:], inc)
	}
	var want int64
	for _, d := range window[1:] { // delta = last − first = sum of deltas after the anchor
		want += d
	}
	res, ok = s.Query("test_total", "", FnDelta, 0)
	if !ok || !almostEqual(res.Value, float64(want)) {
		t.Fatalf("delta after wrap = %v (ok=%v), want %d", res.Value, ok, want)
	}
	latest, _ := s.Query("test_total", "", FnLatest, 0)
	if !almostEqual(latest.Value, float64(c.Value())) {
		t.Fatalf("latest = %v, want live counter %d", latest.Value, c.Value())
	}
}

func TestRateAndRangeCut(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s := New(reg, Config{Retain: 16, Now: clock.now})
	c := reg.Counter("reqs_total")

	s.Tick()
	for i := 0; i < 6; i++ {
		c.Add(10)
		clock.tick(s, time.Second)
	}
	// Full window: 60 added over 6s of sampled time.
	res, ok := s.Query("reqs_total", "", FnRate, 0)
	if !ok || !almostEqual(res.Value, 10) {
		t.Fatalf("full-window rate = %v (ok=%v), want 10", res.Value, ok)
	}
	// 3s window: newest 4 samples, 30 added over 3s.
	res, ok = s.Query("reqs_total", "", FnRate, 3*time.Second)
	if !ok || !almostEqual(res.Value, 10) {
		t.Fatalf("3s rate = %v (ok=%v), want 10", res.Value, ok)
	}
	if res.Samples != 4 {
		t.Fatalf("3s window samples = %d, want 4", res.Samples)
	}
}

func TestMaxOverTimeGauge(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s := New(reg, Config{Retain: 8, Now: clock.now})
	g := reg.Gauge("depth")

	for _, v := range []float64{1, 7, 3} {
		g.Set(v)
		clock.tick(s, time.Second)
	}
	res, ok := s.Query("depth", "", FnMax, 0)
	if !ok || !almostEqual(res.Value, 7) {
		t.Fatalf("max_over_time = %v (ok=%v), want 7", res.Value, ok)
	}
	res, ok = s.Query("depth", "", FnLatest, 0)
	if !ok || !almostEqual(res.Value, 3) {
		t.Fatalf("latest gauge = %v (ok=%v), want 3", res.Value, ok)
	}
}

func TestHistogramRollupSeries(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s := New(reg, Config{Retain: 8, Now: clock.now})
	h := reg.Histogram("lat_seconds")

	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	clock.tick(s, time.Second)
	h.Observe(5)
	clock.tick(s, time.Second)

	count, ok := s.Query("lat_seconds", "count", FnLatest, 0)
	if !ok || count.Value != 101 {
		t.Fatalf("count rollup = %v (ok=%v), want 101", count.Value, ok)
	}
	d, ok := s.Query("lat_seconds", "count", FnDelta, 0)
	if !ok || d.Value != 1 {
		t.Fatalf("count delta = %v (ok=%v), want 1", d.Value, ok)
	}
	p99, ok := s.Query("lat_seconds", "p99", FnLatest, 0)
	if !ok || p99.Value <= 0 {
		t.Fatalf("p99 rollup = %v (ok=%v), want > 0", p99.Value, ok)
	}
	if _, ok := s.Query("lat_seconds", "", FnLatest, 0); ok {
		t.Fatal("bare histogram name should have no series (only |stat rollups)")
	}
}

// TestLateBornSeries pins the mid-run-birth semantics: a counter that
// first appears after the store started is zero-backfilled across the
// existing time ring (it provably was zero — counters register on first
// touch), so delta counts the birth increment; a late gauge gets no
// backfill and only occupies the newest ticks.
func TestLateBornSeries(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	s := New(reg, Config{Retain: 8, Now: clock.now})

	s.Tick() // two ticks before either series exists
	clock.tick(s, time.Second)
	c := reg.Counter("late_total")
	c.Add(5)
	g := reg.Gauge("late_depth")
	g.Set(3)
	clock.tick(s, time.Second)
	c.Add(5)
	clock.tick(s, time.Second)

	res, ok := s.Query("late_total", "", FnDelta, 0)
	if !ok || !almostEqual(res.Value, 10) {
		t.Fatalf("late counter delta = %v (ok=%v), want its whole life 10", res.Value, ok)
	}
	if res.Samples != 4 {
		t.Fatalf("late counter samples = %d, want 4 (2 backfilled zeros)", res.Samples)
	}
	latest, _ := s.Query("late_total", "", FnLatest, 0)
	if !almostEqual(latest.Value, float64(c.Value())) {
		t.Fatalf("late counter latest = %v, want live %d", latest.Value, c.Value())
	}
	gres, ok := s.Query("late_depth", "", FnMax, 0)
	if !ok || !almostEqual(gres.Value, 3) || gres.Samples != 2 {
		t.Fatalf("late gauge max = %v over %d samples (ok=%v), want 3 over 2 (no backfill)", gres.Value, gres.Samples, ok)
	}
}

func TestThresholdRuleStreak(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	rule := Rule{
		Name: "deep-queue", Type: TypeThreshold,
		Metric: "depth", Op: ">=", Value: 5, ForSamples: 2,
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{Retain: 8, Rules: []Rule{rule}, Now: clock.now})
	g := reg.Gauge("depth")

	g.Set(9)
	clock.tick(s, time.Second)
	if s.Alerts()[0].Firing {
		t.Fatal("fired after one breaching sample despite for_samples=2")
	}
	clock.tick(s, time.Second)
	st := s.Alerts()[0]
	if !st.Firing || st.Transitions != 1 {
		t.Fatalf("after second breach: firing=%v transitions=%d, want true/1", st.Firing, st.Transitions)
	}
	if got := reg.Gauge(MetricAlertsFiring).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricAlertsFiring, got)
	}
	g.Set(1)
	clock.tick(s, time.Second)
	st = s.Alerts()[0]
	if st.Firing || st.Transitions != 2 {
		t.Fatalf("after recovery: firing=%v transitions=%d, want false/2", st.Firing, st.Transitions)
	}
	if got := reg.Counter(`fenrir_alert_transitions_total{rule="deep-queue",to="firing"}`).Value(); got != 1 {
		t.Fatalf("firing transition counter = %d, want 1", got)
	}
	if got := reg.Counter(`fenrir_alert_transitions_total{rule="deep-queue",to="resolved"}`).Value(); got != 1 {
		t.Fatalf("resolved transition counter = %d, want 1", got)
	}
}

// TestBurnRateFiresAndResolves drives the dual-window rule through a
// deterministic incident: heavy errors trip both windows, then clean
// traffic clears the fast window and resolves the alert.
func TestBurnRateFiresAndResolves(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	rule := Rule{
		Name: "ingest-slo", Type: TypeBurnRate,
		ErrorMetric: "errs_total", TotalMetric: "reqs_total",
		Objective: 0.9, Factor: 2,
		FastRange: Duration(3 * time.Second), SlowRange: Duration(9 * time.Second),
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{Retain: 32, Rules: []Rule{rule}, Now: clock.now})
	errs, reqs := reg.Counter("errs_total"), reg.Counter("reqs_total")

	s.Tick()
	// Error ratio 0.5 against a 0.1 budget: burn 5x in both windows.
	firedAt := -1
	for i := 0; i < 10; i++ {
		reqs.Add(10)
		errs.Add(5)
		clock.tick(s, time.Second)
		if firedAt < 0 && s.Alerts()[0].Firing {
			firedAt = i
		}
	}
	st := s.Alerts()[0]
	if !st.Firing {
		t.Fatalf("burn-rate rule never fired; status %+v", st)
	}
	if st.Value < 2 || st.SlowValue < 2 {
		t.Fatalf("burn values fast=%v slow=%v, want both >= factor 2", st.Value, st.SlowValue)
	}
	if firedAt < 0 {
		t.Fatal("missed firing tick")
	}

	// Clean traffic: the fast window's error rate decays to zero and the
	// rule must resolve even while the slow window still remembers.
	resolvedAt := -1
	for i := 0; i < 10; i++ {
		reqs.Add(10)
		clock.tick(s, time.Second)
		if resolvedAt < 0 && !s.Alerts()[0].Firing {
			resolvedAt = i
		}
	}
	st = s.Alerts()[0]
	if st.Firing {
		t.Fatalf("burn-rate rule never resolved; status %+v", st)
	}
	if st.Transitions != 2 {
		t.Fatalf("transitions = %d, want exactly 2 (fire + resolve)", st.Transitions)
	}
	if got := reg.Gauge(MetricAlertsFiring).Value(); got != 0 {
		t.Fatalf("%s = %v after resolve, want 0", MetricAlertsFiring, got)
	}

	// Transitions reached the flight recorder.
	var sawFiring, sawResolved bool
	for _, e := range reg.Events(0) {
		switch e.Msg {
		case "alert firing":
			sawFiring = true
		case "alert resolved":
			sawResolved = true
		}
	}
	if !sawFiring || !sawResolved {
		t.Fatalf("flight recorder missing transitions: firing=%v resolved=%v", sawFiring, sawResolved)
	}

	sum := s.ManifestSummary()
	if sum == nil || sum.Rules != 1 || sum.Transitions != 2 || len(sum.Firing) != 0 {
		t.Fatalf("manifest summary %+v, want 1 rule, 2 transitions, nothing firing", sum)
	}
}

func TestLoadRules(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	body := `[
  {"name": "slo", "type": "burn_rate", "error_metric": "e", "total_metric": "t",
   "objective": 0.99, "factor": 4, "fast_range": "1m", "slow_range": 600},
  {"name": "depth", "type": "threshold", "metric": "d", "op": ">", "value": 10, "range": "5m"}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if time.Duration(rules[0].FastRange) != time.Minute {
		t.Fatalf("fast_range = %v, want 1m", time.Duration(rules[0].FastRange))
	}
	if time.Duration(rules[0].SlowRange) != 10*time.Minute {
		t.Fatalf("numeric slow_range = %v, want 10m", time.Duration(rules[0].SlowRange))
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"name":"x","type":"burn_rate","error_metric":"e","total_metric":"t","objective":1.5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRules(bad); err == nil {
		t.Fatal("objective outside (0,1) loaded without error")
	}
}

func TestRuleValidation(t *testing.T) {
	cases := []Rule{
		{},
		{Name: "x"},
		{Name: "x", Type: TypeThreshold},
		{Name: "x", Type: TypeThreshold, Metric: "m", Fn: "median"},
		{Name: "x", Type: TypeThreshold, Metric: "m", Op: "=="},
		{Name: "x", Type: TypeBurnRate, ErrorMetric: "e"},
		{Name: "x", Type: TypeBurnRate, ErrorMetric: "e", TotalMetric: "t", Objective: 0},
		{Name: "x", Type: TypeBurnRate, ErrorMetric: "e", TotalMetric: "t", Objective: 0.9,
			FastRange: Duration(time.Hour), SlowRange: Duration(time.Minute)},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v): invalid rule validated", i, r)
		}
	}
	ok := Rule{Name: "x", Type: TypeThreshold, Metric: "m"}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal threshold rule rejected: %v", err)
	}
}

func TestNilStoreSafety(t *testing.T) {
	var s *Store
	s.Start()
	s.Tick()
	s.Stop()
	if _, ok := s.Query("m", "", FnLatest, 0); ok {
		t.Fatal("nil store answered a query")
	}
	if s.Alerts() != nil || s.Timelines() != nil || s.ManifestSummary() != nil {
		t.Fatal("nil store returned non-nil state")
	}
	if s.Ticks() != 0 || s.Retain() != 0 || s.Interval() != 0 {
		t.Fatal("nil store reported nonzero config")
	}
}

func TestStartStopLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total").Add(1)
	s := New(reg, Config{Every: time.Millisecond, Retain: 8})
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Ticks() < 2 {
		t.Fatal("sampler goroutine never ticked")
	}
	s.Stop()
	s.Stop() // idempotent
	after := s.Ticks()
	time.Sleep(5 * time.Millisecond)
	if s.Ticks() != after {
		t.Fatal("ticks advanced after Stop")
	}

	// Stop without Start must not hang and still takes a final sample.
	s2 := New(reg, Config{Retain: 8})
	done := make(chan struct{})
	go func() { s2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}
	if s2.Ticks() != 1 {
		t.Fatalf("Stop's final sample: ticks = %d, want 1", s2.Ticks())
	}
}

package history

import (
	"encoding/json"
	"net/http"
	"time"
)

// writeJSON encodes v with a stable, lightly indented layout.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// QueryHandler serves single-value queries over the rings:
//
//	GET /v1/query?metric=fenrir_serve_ingest_total&fn=rate&range=5m
//	GET /v1/query?metric=fenrir_serve_admission_seconds{tenant="a"}&stat=p99&fn=max
//
// fn defaults to latest, range to the whole retained window. Unknown
// series return 404 so probes can distinguish "no data yet" from zero.
func QueryHandler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		metric := q.Get("metric")
		if metric == "" {
			http.Error(w, "metric parameter is required", http.StatusBadRequest)
			return
		}
		fn, ok := ParseFn(q.Get("fn"))
		if !ok {
			http.Error(w, "unknown fn (want latest, delta, rate, or max_over_time)", http.StatusBadRequest)
			return
		}
		var rng time.Duration
		if raw := q.Get("range"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil || d < 0 {
				http.Error(w, "range must be a non-negative duration like 5m", http.StatusBadRequest)
				return
			}
			rng = d
		}
		res, ok := s.Query(metric, q.Get("stat"), fn, rng)
		if !ok {
			http.Error(w, "no samples for that series", http.StatusNotFound)
			return
		}
		writeJSON(w, res)
	})
}

// AlertsHandler serves every rule's current state:
//
//	GET /v1/alerts -> {"firing":1,"alerts":[{"name":...,"firing":true,...}]}
func AlertsHandler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		alerts := s.Alerts()
		if alerts == nil {
			alerts = []AlertStatus{}
		}
		firing := 0
		for _, a := range alerts {
			if a.Firing {
				firing++
			}
		}
		writeJSON(w, struct {
			Firing int           `json:"firing"`
			Alerts []AlertStatus `json:"alerts"`
		}{Firing: firing, Alerts: alerts})
	})
}

// TimelineHandler dumps the whole retention window as JSON series:
//
//	GET /debug/timeline -> {"interval":"10s","ticks":42,"series":{...}}
func TimelineHandler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		series := s.Timelines()
		if series == nil {
			series = map[string]Timeline{}
		}
		writeJSON(w, struct {
			Interval string              `json:"interval"`
			Ticks    uint64              `json:"ticks"`
			Retain   int                 `json:"retain"`
			Series   map[string]Timeline `json:"series"`
		}{Interval: s.Interval().String(), Ticks: s.Ticks(), Retain: s.Retain(), Series: series})
	})
}

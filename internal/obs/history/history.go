// Package history makes a Fenrir daemon self-observing instead of
// merely inspectable: it is an in-process time-series store, alert
// engine, and retention layer over the live obs.Registry.
//
// A sampler (Start, or Tick under an injectable clock) scrapes the
// registry every interval into fixed-capacity per-series ring buffers:
// counters are delta-encoded (one small float per tick plus a rolling
// base, so a wrapped ring still reconstructs exact absolute values),
// gauges are stored raw, and histograms are rolled up into five derived
// series (count, sum, p50, p90, p99). Query helpers — Rate, Delta,
// MaxOverTime, Latest — answer the questions point-in-time /metrics
// cannot: "what was p99 admission over the last 10 minutes?", "how fast
// is the eviction counter moving?". The whole retention window is
// exported as JSON via TimelineHandler (/debug/timeline) and single
// values via QueryHandler (/v1/query).
//
// On top of the rings sits a deterministic alert rule engine (alerts.go)
// evaluated after every sample tick: threshold rules and dual-window SLO
// burn-rate rules, with firing/resolved transitions logged to the flight
// recorder and counted in the registry itself — the daemon's own alert
// history is therefore sampled by the daemon's own sampler.
//
// Everything is virtual-time friendly: Config.Now injects the clock, and
// Tick advances one sample synchronously, so tests drive the store
// deterministically without a goroutine or a real ticker.
package history

import (
	"sort"
	"sync"
	"time"

	"fenrir/internal/obs"
)

// Defaults: 10s sampling × 360 samples = a one-hour retention window.
const (
	DefaultEvery  = 10 * time.Second
	DefaultRetain = 360
)

// Config tunes a Store. The zero value samples every DefaultEvery into
// DefaultRetain-deep rings with no alert rules, using the real clock.
type Config struct {
	// Every is the sampling interval Start's background goroutine uses
	// (<= 0 means DefaultEvery). Tick ignores it.
	Every time.Duration
	// Retain bounds every series ring to this many samples (<= 0 means
	// DefaultRetain). Memory is O(series × Retain).
	Retain int
	// Rules are the alert rules evaluated after every sample tick.
	Rules []Rule
	// Now injects the clock (nil means time.Now). Samples are stamped
	// and alert windows measured with it, so a virtual clock makes the
	// whole store — rings, rates, burn windows — deterministic.
	Now func() time.Time
}

func (c Config) every() time.Duration {
	if c.Every <= 0 {
		return DefaultEvery
	}
	return c.Every
}

func (c Config) retain() int {
	if c.Retain <= 0 {
		return DefaultRetain
	}
	return c.Retain
}

// seriesKind distinguishes ring encodings: counters store per-tick
// deltas, gauges store raw values.
type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
)

func (k seriesKind) String() string {
	if k == kindCounter {
		return "counter"
	}
	return "gauge"
}

// series is one metric's bounded history. Counters are delta-encoded:
// vals[i] holds the increment between consecutive samples and base holds
// the absolute value at the oldest retained sample, so absolute values
// reconstruct exactly (base, base+vals[1], base+vals[1]+vals[2], ...)
// no matter how often the ring has wrapped. Gauges hold raw values and
// base is unused. last is the newest absolute value, kept outside the
// ring so delta encoding never accumulates float error: the next delta
// is always computed against the true current value.
type series struct {
	kind seriesKind
	vals []float64 // ring storage, capacity Retain
	head int       // index of oldest sample once wrapped
	n    int       // samples stored
	base float64   // counters: absolute value at the oldest sample
	last float64   // newest absolute value
	age  int       // ticks since this series' first sample
}

func (s *series) push(v float64) {
	var stored float64
	switch s.kind {
	case kindCounter:
		if s.n == 0 {
			// First sample: the pre-existing total is not "change we
			// watched happen", so the first delta is zero and base
			// anchors at the current absolute value.
			s.base = v
			stored = 0
		} else {
			stored = v - s.last
			if stored < 0 {
				// Counter reset (shouldn't happen with obs counters, but
				// stay honest): treat the new value as a fresh start.
				stored = 0
				s.base = v
				s.vals = s.vals[:0]
				s.head, s.n = 0, 0
			}
		}
	case kindGauge:
		stored = v
	}
	s.last = v
	s.age++
	if s.n < cap(s.vals) {
		s.vals = append(s.vals, stored)
		s.n++
		return
	}
	// Overwrite the oldest sample; for counters its delta folds into
	// base so absolutes stay exact across the wrap.
	if s.kind == kindCounter {
		// The ring holds deltas d0..dk where absolute[i] = base + sum of
		// d1..di (d0 is always 0 relative to base). Evicting d0 promotes
		// d1 into the anchor: base moves forward by the evicted-successor
		// delta.
		next := (s.head + 1) % cap(s.vals)
		s.base += s.vals[next]
		s.vals[next] = 0
	}
	s.vals[s.head] = stored
	s.head = (s.head + 1) % cap(s.vals)
}

// absolutes reconstructs the series' absolute values, oldest first.
func (s *series) absolutes() []float64 {
	out := make([]float64, s.n)
	acc := s.base
	for i := 0; i < s.n; i++ {
		v := s.vals[(s.head+i)%cap(s.vals)]
		if s.kind == kindCounter {
			if i > 0 {
				acc += v
			}
			out[i] = acc
		} else {
			out[i] = v
		}
	}
	return out
}

// Store is the in-process time-series database: per-series rings fed by
// sampling a live registry, plus the alert engine state. All methods
// are safe for concurrent use; a nil Store is a no-op (queries miss,
// Tick does nothing), preserving the obs layer's nil contract.
type Store struct {
	reg *obs.Registry
	cfg Config

	mu     sync.Mutex
	times  []time.Time // sample-time ring, capacity Retain
	thead  int
	tn     int
	ticks  uint64 // lifetime sample count (not bounded by the ring)
	series map[string]*series
	alerts []*alertState

	firingGauge *obs.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a store over reg. The registry may be nil (every tick then
// samples nothing, and alerts never fire); rules are validated lazily —
// use Rule.Validate or LoadRules to reject malformed rules up front.
func New(reg *obs.Registry, cfg Config) *Store {
	s := &Store{
		reg:         reg,
		cfg:         cfg,
		series:      make(map[string]*series),
		firingGauge: reg.Gauge(MetricAlertsFiring),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for i := range cfg.Rules {
		s.alerts = append(s.alerts, newAlertState(cfg.Rules[i]))
	}
	s.firingGauge.Set(0)
	return s
}

// now reads the injected clock.
func (s *Store) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// Start launches the background sampler goroutine, ticking every
// Config.Every until Stop. Safe to call once; no-op on a nil store.
func (s *Store) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.cfg.every())
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.Tick()
				}
			}
		}()
	})
}

// Stop halts the sampler goroutine (if Start ran) and takes one final
// sample so the rings and alert states reflect the very end of the run.
// Safe on a nil store and safe to call more than once.
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stop)
		s.startOnce.Do(func() { close(s.done) }) // Start never ran
		<-s.done
		s.Tick()
	})
}

// Tick takes one sample: scrape the registry into the rings, then
// evaluate every alert rule against the updated windows. Deterministic
// given the registry contents and the injected clock. No-op on a nil
// store.
func (s *Store) Tick() {
	if s == nil {
		return
	}
	now := s.now()
	snap := s.reg.Snapshot()
	s.mu.Lock()
	s.pushTime(now)
	s.ticks++
	if snap != nil {
		if counters, ok := snap["counters"].(map[string]int64); ok {
			for name, v := range counters {
				s.sampleLocked(name, kindCounter, float64(v))
			}
		}
		if floats, ok := snap["float_counters"].(map[string]float64); ok {
			for name, v := range floats {
				s.sampleLocked(name, kindCounter, v)
			}
		}
		if gauges, ok := snap["gauges"].(map[string]float64); ok {
			for name, v := range gauges {
				s.sampleLocked(name, kindGauge, v)
			}
		}
		if hists, ok := snap["histograms"].(map[string]obs.HistogramSummary); ok {
			for name, h := range hists {
				s.sampleLocked(name+statSep+"count", kindCounter, float64(h.Count))
				s.sampleLocked(name+statSep+"sum", kindCounter, h.Sum)
				s.sampleLocked(name+statSep+"p50", kindGauge, h.P50)
				s.sampleLocked(name+statSep+"p90", kindGauge, h.P90)
				s.sampleLocked(name+statSep+"p99", kindGauge, h.P99)
			}
		}
	}
	s.evalAlertsLocked(now)
	s.mu.Unlock()
}

func (s *Store) pushTime(t time.Time) {
	retain := s.cfg.retain()
	if s.times == nil {
		s.times = make([]time.Time, 0, retain)
	}
	if s.tn < cap(s.times) {
		s.times = append(s.times, t)
		s.tn++
		return
	}
	s.times[s.thead] = t
	s.thead = (s.thead + 1) % cap(s.times)
}

// sampleTimes returns the retained sample times, oldest first.
func (s *Store) sampleTimes() []time.Time {
	out := make([]time.Time, s.tn)
	for i := 0; i < s.tn; i++ {
		out[i] = s.times[(s.thead+i)%cap(s.times)]
	}
	return out
}

func (s *Store) sampleLocked(key string, kind seriesKind, v float64) {
	sr := s.series[key]
	if sr == nil {
		sr = &series{kind: kind, vals: make([]float64, 0, s.cfg.retain())}
		s.series[key] = sr
		if kind == kindCounter {
			// Counters register on first touch, so one born after the
			// store's first sample was zero at every earlier tick.
			// Backfill those zeros: the anchor sits at 0 and the birth
			// increment is a real delta, so windowed delta/rate queries
			// count it instead of writing it off as pre-existing total.
			// (Gauges get no backfill — they have no meaningful prior
			// value, and phantom zeros would corrupt max_over_time.)
			for i := 0; i < s.tn-1; i++ {
				sr.push(0)
			}
		}
	}
	sr.push(v)
}

// statSep joins a histogram metric name with its derived stat in series
// keys: `fenrir_serve_ingest_seconds|p99`. The pipe cannot occur in a
// valid metric name, so keys never collide.
const statSep = "|"

// Key builds the series key for a metric plus an optional histogram
// stat ("count", "sum", "p50", "p90", "p99"; empty for plain series).
func Key(metric, stat string) string {
	if stat == "" {
		return metric
	}
	return metric + statSep + stat
}

// Fn names a query function over a series window.
type Fn string

const (
	// FnLatest returns the newest sample's value.
	FnLatest Fn = "latest"
	// FnDelta returns last − first over the range: a counter's exact net
	// change across the sampled window.
	FnDelta Fn = "delta"
	// FnRate returns delta divided by the elapsed seconds between the
	// first and last sample in range (per-second rate).
	FnRate Fn = "rate"
	// FnMax returns the maximum absolute value over the range.
	FnMax Fn = "max_over_time"
)

// ParseFn maps the wire spelling (including the "max" shorthand) to a
// Fn; empty means FnLatest.
func ParseFn(s string) (Fn, bool) {
	switch s {
	case "", "latest":
		return FnLatest, true
	case "delta":
		return FnDelta, true
	case "rate":
		return FnRate, true
	case "max", "max_over_time":
		return FnMax, true
	}
	return "", false
}

// QueryResult is one evaluated query: the value plus the window it was
// computed over.
type QueryResult struct {
	Metric  string    `json:"metric"`
	Stat    string    `json:"stat,omitempty"`
	Fn      Fn        `json:"fn"`
	Value   float64   `json:"value"`
	Samples int       `json:"samples"`
	From    time.Time `json:"from"`
	To      time.Time `json:"to"`
}

// Query evaluates fn over the newest samples of metric (plus optional
// histogram stat) within rng of the last sample (rng <= 0 means the
// whole retained window). ok is false when the series is unknown or
// empty. Nil store misses everything.
func (s *Store) Query(metric, stat string, fn Fn, rng time.Duration) (QueryResult, bool) {
	if s == nil {
		return QueryResult{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queryLocked(metric, stat, fn, rng)
}

func (s *Store) queryLocked(metric, stat string, fn Fn, rng time.Duration) (QueryResult, bool) {
	sr := s.series[Key(metric, stat)]
	if sr == nil || sr.n == 0 {
		return QueryResult{}, false
	}
	vals := sr.absolutes()
	times := s.sampleTimes()
	// A series younger than the store only occupies the newest samples;
	// align it against the tail of the time ring.
	times = times[len(times)-len(vals):]
	lo := 0
	if rng > 0 {
		cut := times[len(times)-1].Add(-rng)
		for lo < len(times)-1 && times[lo].Before(cut) {
			lo++
		}
	}
	vals, times = vals[lo:], times[lo:]
	res := QueryResult{
		Metric:  metric,
		Stat:    stat,
		Fn:      fn,
		Samples: len(vals),
		From:    times[0],
		To:      times[len(times)-1],
	}
	switch fn {
	case FnLatest:
		res.Value = vals[len(vals)-1]
	case FnDelta:
		res.Value = vals[len(vals)-1] - vals[0]
	case FnRate:
		secs := times[len(times)-1].Sub(times[0]).Seconds()
		if secs > 0 {
			res.Value = (vals[len(vals)-1] - vals[0]) / secs
		}
	case FnMax:
		max := vals[0]
		for _, v := range vals[1:] {
			if v > max {
				max = v
			}
		}
		res.Value = max
	default:
		return QueryResult{}, false
	}
	return res, true
}

// Timeline is one series' full retained window, for /debug/timeline.
type Timeline struct {
	Kind   string    `json:"kind"`
	Times  []int64   `json:"times_unix_ms"`
	Values []float64 `json:"values"`
}

// Timelines exports every series' retained window, keyed by series key
// (histogram rollups carry their |stat suffix), with keys sorted for a
// deterministic encoding order. Nil store returns nil.
func (s *Store) Timelines() map[string]Timeline {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	times := s.sampleTimes()
	out := make(map[string]Timeline, len(s.series))
	for key, sr := range s.series {
		vals := sr.absolutes()
		st := times[len(times)-len(vals):]
		ms := make([]int64, len(st))
		for i, t := range st {
			ms[i] = t.UnixMilli()
		}
		out[key] = Timeline{Kind: sr.kind.String(), Times: ms, Values: vals}
	}
	return out
}

// SeriesKeys returns the sorted keys of every retained series.
func (s *Store) SeriesKeys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ticks returns the lifetime sample count.
func (s *Store) Ticks() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Interval returns the configured sampling interval.
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.every()
}

// Retain returns the configured per-series sample retention.
func (s *Store) Retain() int {
	if s == nil {
		return 0
	}
	return s.cfg.retain()
}

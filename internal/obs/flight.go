package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// flightCap bounds the flight-recorder ring. 1024 events is hours of
// daemon incident history (quarantines, 429s, checkpoints) at a few KB,
// while a batch scenario run rarely emits more than a few dozen.
const flightCap = 1024

// Event is one structured flight-recorder entry: a leveled message plus
// flattened key=value attributes, stamped with a monotone sequence
// number so consumers can detect ring eviction between drains.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// FlightRecorder is a bounded in-memory ring of Events. It is the
// landing zone for the registry's slog handler: cheap enough to leave
// on permanently, drained on demand via Events / /debug/events, and
// folded into run manifests. The zero number of events is valid; a nil
// recorder drops everything.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Event
	head int // index of oldest event once the ring has wrapped
	n    int // events currently stored
	seq  uint64
	// evicted counts events overwritten after the ring wrapped. Atomic
	// so exposition paths can read it without taking mu; surfaced as
	// fenrir_flight_events_evicted_total.
	evicted atomic.Uint64
}

// NewFlightRecorder builds a recorder holding at most capacity events
// (the newest win). Capacity below 1 is clamped to 1.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]Event, 0, capacity)}
}

func (fr *FlightRecorder) add(e Event) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seq++
	e.Seq = fr.seq
	if fr.n < cap(fr.buf) {
		fr.buf = append(fr.buf, e)
		fr.n++
		return
	}
	fr.buf[fr.head] = e
	fr.head = (fr.head + 1) % cap(fr.buf)
	fr.evicted.Add(1)
}

// Evicted returns how many events the ring has overwritten since
// creation — nonzero means Events no longer reaches back to the start
// of the run. Returns 0 on a nil recorder.
func (fr *FlightRecorder) Evicted() uint64 {
	if fr == nil {
		return 0
	}
	return fr.evicted.Load()
}

// Events returns up to n of the most recent events, oldest first.
// n <= 0 means all retained events. Nil recorder returns nil.
func (fr *FlightRecorder) Events(n int) []Event {
	events, _ := fr.Snapshot(n)
	return events
}

// Snapshot returns up to n of the most recent events (oldest first,
// n <= 0 means all) together with the eviction count, both read under a
// single lock acquisition. The pair is therefore mutually consistent: a
// full ring's oldest returned event always has Seq == evicted+1, with
// no gaps anywhere in the window — reading Events and Evicted
// separately can race a concurrent writer and see an eviction count
// from a later ring state than the events. Nil recorder returns
// (nil, 0).
func (fr *FlightRecorder) Snapshot(n int) (events []Event, evicted uint64) {
	if fr == nil {
		return nil, 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Event, 0, fr.n)
	for i := 0; i < fr.n; i++ {
		out = append(out, fr.buf[(fr.head+i)%cap(fr.buf)])
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, fr.evicted.Load()
}

// flightHandler is the slog.Handler that feeds a FlightRecorder.
// Attributes from WithAttrs and group prefixes from WithGroup are
// pre-rendered into the handler so Handle stays a flat copy.
type flightHandler struct {
	fr     *FlightRecorder
	prefix string // dotted group path, e.g. "serve."
	attrs  []Attr // attrs bound via WithAttrs, already prefixed
}

func (h *flightHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *flightHandler) Handle(_ context.Context, rec slog.Record) error {
	e := Event{
		Time:  rec.Time,
		Level: rec.Level.String(),
		Msg:   rec.Message,
	}
	if len(h.attrs) > 0 || rec.NumAttrs() > 0 {
		e.Attrs = make([]Attr, 0, len(h.attrs)+rec.NumAttrs())
		e.Attrs = append(e.Attrs, h.attrs...)
		rec.Attrs(func(a slog.Attr) bool {
			e.Attrs = appendFlatAttr(e.Attrs, h.prefix, a)
			return true
		})
	}
	h.fr.add(e)
	return nil
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &flightHandler{fr: h.fr, prefix: h.prefix}
	nh.attrs = append([]Attr(nil), h.attrs...)
	for _, a := range attrs {
		nh.attrs = appendFlatAttr(nh.attrs, h.prefix, a)
	}
	return nh
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &flightHandler{fr: h.fr, prefix: h.prefix + name + ".", attrs: h.attrs}
}

// appendFlatAttr flattens one slog.Attr (recursing into groups) into
// the Event attr list with deterministic string rendering.
func appendFlatAttr(dst []Attr, prefix string, a slog.Attr) []Attr {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p += a.Key + "."
		}
		for _, ga := range v.Group() {
			dst = appendFlatAttr(dst, p, ga)
		}
		return dst
	}
	if a.Key == "" {
		return dst
	}
	return append(dst, Attr{Key: prefix + a.Key, Value: attrValue(v.Any())})
}

// noopHandler discards records. The module targets Go 1.22, which
// predates slog.DiscardHandler, so we carry our own.
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

var noopLogger = slog.New(noopHandler{})

// Logger returns the registry's structured logger, whose records land
// in the flight-recorder ring. On a nil registry it returns a logger
// that discards everything, preserving the no-op contract.
func (r *Registry) Logger() *slog.Logger {
	if r == nil || !r.hasFlight.Load() {
		return noopLogger
	}
	return r.logger
}

// Events drains up to n of the most recent flight-recorder events,
// oldest first (n <= 0 means all). Nil registry returns nil.
func (r *Registry) Events(n int) []Event {
	if r == nil {
		return nil
	}
	return r.flight.Events(n)
}

// EventsHandler serves the flight recorder as JSON:
//
//	GET /debug/events?n=50  ->  {"events":[...]}
//
// n defaults to all retained events.
func EventsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(struct {
			Events []Event `json:"events"`
		}{Events: r.Events(n)})
	})
}

package obs

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The nil-registry no-op contract is what lets library code instrument
// unconditionally; every handle type must survive a nil receiver.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	r.Histogram("h").Observe(1)
	r.Histogram("h").ObserveSince(time.Now())
	if r.Histogram("h").Count() != 0 || r.Histogram("h").Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	sp := r.StartSpan("stage")
	sp.SetItems(9)
	sp.AddItems(1)
	sp.SetWorkers(4)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if r.Spans() != nil || r.StageSummary() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry returned data")
	}
	r.WritePrometheus(io.Discard)
	var m Manifest
	m.FillFromRegistry(r)
	var s *RuntimeSampler
	if g, h := s.Stop(); g != 0 || h != 0 {
		t.Fatal("nil sampler returned peaks")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fenrir_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("fenrir_test_total") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	g := r.Gauge("fenrir_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	h := r.Histogram("fenrir_test_seconds")
	h.Observe(1e-6)
	h.Observe(0.5)
	h.Observe(1e12) // beyond the last bound: counted, bucketed as +Inf only
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if got := h.Sum(); got < 0.5 {
		t.Fatalf("histogram sum = %v", got)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSpansAndStageSummary(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("similarity")
	sp.SetItems(100)
	sp.SetWorkers(4)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	sp.End() // double End must not duplicate the record
	sp2 := r.StartSpan("similarity")
	sp2.SetItems(50)
	sp2.SetWorkers(2)
	sp2.End()
	r.StartSpan("cluster").End()

	if got := len(r.Spans()); got != 3 {
		t.Fatalf("raw spans = %d, want 3", got)
	}
	sum := r.StageSummary()
	if len(sum) != 2 {
		t.Fatalf("summary stages = %d, want 2", len(sum))
	}
	if sum[0].Name != "similarity" || sum[0].Items != 150 || sum[0].Workers != 4 {
		t.Fatalf("similarity rollup = %+v", sum[0])
	}
	if sum[1].Name != "cluster" {
		t.Fatalf("stage order = %+v", sum)
	}
	if got := r.Counter(`fenrir_stage_runs_total{stage="similarity"}`).Value(); got != 2 {
		t.Fatalf("stage runs counter = %d, want 2", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`fenrir_kernel_total{kernel="pessimistic-uniform"}`).Add(3)
	r.Gauge("fenrir_workers").Set(8)
	r.Histogram(`fenrir_tile_seconds{stage="similarity"}`).Observe(0.01)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE fenrir_kernel_total counter",
		`fenrir_kernel_total{kernel="pessimistic-uniform"} 3`,
		"# TYPE fenrir_workers gauge",
		"fenrir_workers 8",
		"# TYPE fenrir_tile_seconds histogram",
		`fenrir_tile_seconds_bucket{stage="similarity",le="+Inf"} 1`,
		`fenrir_tile_seconds_count{stage="similarity"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, `le="0.016777216"`) {
		t.Fatalf("expected log-scale bucket boundary in:\n%s", out)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fenrir_up").Inc()
	srv, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "fenrir_up 1") {
		t.Fatal("/metrics missing counter")
	}
	if !strings.Contains(get("/debug/vars"), "memstats") {
		t.Fatal("/debug/vars missing expvar memstats")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("/debug/pprof/ index missing")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("observe")
	sp.SetItems(42)
	sp.End()
	r.Counter("fenrir_monitor_appends_total").Add(42)
	r.Gauge("fenrir_cluster_threshold").Set(0.12)

	m := &Manifest{
		Scenario:    "wikipedia",
		Seed:        42,
		Started:     time.Now().UTC(),
		WallSeconds: 1.5,
		MatrixRows:  42,
		Networks:    1200,
		Modes:       3,
	}
	m.FillFromRegistry(r)
	if m.Stage("observe") == nil || m.Stage("observe").Items != 42 {
		t.Fatalf("stage rollup missing: %+v", m.Stages)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != "wikipedia" || got.Seed != 42 || got.Modes != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Counters["fenrir_monitor_appends_total"] != 42 {
		t.Fatalf("counters lost: %+v", got.Counters)
	}
	if got.StageSeconds() <= 0 {
		t.Fatal("stage seconds not recorded")
	}
}

func TestRuntimeSampler(t *testing.T) {
	s := StartRuntimeSampler(time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-stop
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	g, heap := s.Stop()
	if g < 16 {
		t.Fatalf("peak goroutines = %d, want >= 16", g)
	}
	if heap == 0 {
		t.Fatal("peak heap not sampled")
	}
	// Stop is idempotent.
	if g2, _ := s.Stop(); g2 != g {
		t.Fatalf("second Stop changed peaks: %d vs %d", g2, g)
	}
}

// TestEvictionCounters pins the bounded-ring eviction accounting: both
// counters are always present (zero included — presence is the proof
// nothing was dropped), the flight ring counts overwrites once it
// wraps, the trace ring likewise, and both surface through
// WritePrometheus, Snapshot, and the manifest.
func TestEvictionCounters(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, name := range []string{"fenrir_trace_spans_evicted_total 0", "fenrir_flight_events_evicted_total 0"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("fresh registry missing %q:\n%s", name, buf.String())
		}
	}
	if r.TraceEvicted() != 0 || r.FlightEvicted() != 0 {
		t.Fatal("fresh registry reports evictions")
	}

	// Wrap the flight ring: flightCap+7 events must evict exactly 7.
	for i := 0; i < flightCap+7; i++ {
		r.Logger().Info("event", "i", i)
	}
	if got := r.FlightEvicted(); got != 7 {
		t.Fatalf("flight evictions = %d, want 7", got)
	}

	// Wrap the trace ring: traceCap+3 finished spans must evict 3.
	root := r.BeginTrace("run")
	for i := 0; i < traceCap+2; i++ {
		root.Child("s").End()
	}
	root.End()
	if got := r.TraceEvicted(); got != 3 {
		t.Fatalf("trace evictions = %d, want 3", got)
	}

	snapCounters := r.Snapshot()["counters"].(map[string]int64)
	if snapCounters["fenrir_flight_events_evicted_total"] != 7 ||
		snapCounters["fenrir_trace_spans_evicted_total"] != 3 {
		t.Fatalf("snapshot counters wrong: %+v", snapCounters)
	}
	var m Manifest
	m.FillFromRegistry(r)
	if m.Counters["fenrir_flight_events_evicted_total"] != 7 ||
		m.Counters["fenrir_trace_spans_evicted_total"] != 3 {
		t.Fatalf("manifest counters wrong: %+v", m.Counters)
	}
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "fenrir_flight_events_evicted_total 7") {
		t.Fatalf("prometheus output missing eviction count:\n%s", buf.String())
	}

	// Nil-registry accessors are no-ops, per the obs contract.
	var nilReg *Registry
	if nilReg.TraceEvicted() != 0 || nilReg.FlightEvicted() != 0 {
		t.Fatal("nil registry reports evictions")
	}
}

// TestReadRuntimeHealth exercises the /status runtime block: the
// sampled values must be live (goroutines, heap) and the GC-pause
// quantile non-negative even when no GC has run yet.
func TestReadRuntimeHealth(t *testing.T) {
	h := ReadRuntimeHealth()
	if h.Goroutines < 1 {
		t.Fatalf("goroutines = %d", h.Goroutines)
	}
	if h.HeapBytes == 0 {
		t.Fatal("heap bytes = 0")
	}
	if h.GCPauseP99Secs < 0 {
		t.Fatalf("gc pause p99 = %v", h.GCPauseP99Secs)
	}
}

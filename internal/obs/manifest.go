package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Manifest is the structured record of one pipeline run: what ran, how
// it was configured, where the wall time went, what the analysis
// produced, and how hard the runtime worked. It is written as indented
// JSON so operators can diff manifests across runs.
type Manifest struct {
	Scenario string    `json:"scenario"`
	Seed     uint64    `json:"seed"`
	Started  time.Time `json:"started"`
	// WallSeconds is the run's total wall time, measured monotonically
	// by the caller from process start to manifest write.
	WallSeconds float64 `json:"wall_seconds"`
	// Config is the scenario configuration, marshalled verbatim.
	Config json.RawMessage `json:"config,omitempty"`
	// Stages are the per-stage rollups (see Registry.StageSummary);
	// their Seconds sum to ~WallSeconds when the pipeline is fully
	// instrumented.
	Stages []StageRecord `json:"stages"`
	// MatrixRows and Networks give the similarity-matrix shape
	// (epochs × epochs over this many networks); 0 when no matrix ran.
	MatrixRows int `json:"matrix_rows,omitempty"`
	Networks   int `json:"networks,omitempty"`
	// Modes is the discovered routing-mode count.
	Modes int `json:"modes,omitempty"`
	// PeakGoroutines and PeakHeapBytes come from runtime sampling.
	PeakGoroutines int    `json:"peak_goroutines,omitempty"`
	PeakHeapBytes  uint64 `json:"peak_heap_bytes,omitempty"`
	// Counters and Gauges snapshot the registry at write time.
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// FloatCounters snapshot the monotone float counters (stage seconds).
	FloatCounters map[string]float64 `json:"float_counters,omitempty"`
	// Histograms carry per-histogram count/sum/p50/p90/p99 rollups.
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	// Events is the flight-recorder drain at write time: the most recent
	// structured events (quarantines, retries, 429s, checkpoints, fault
	// injections), oldest first.
	Events []Event `json:"events,omitempty"`
	// Detections are the run's explained change events: one provenance
	// rollup per ChangeEvent (verdict, magnitude, headline flow), in
	// detection order.
	Detections []DetectionSummary `json:"detections,omitempty"`
	// Alerts summarizes the telemetry-history alert engine at shutdown
	// (see internal/obs/history): rule count, samples taken, rules still
	// firing, and total firing/resolved transitions. Present whenever
	// the daemon ran with history sampling enabled, even if no rule ever
	// fired — absence means the run was not self-observing.
	Alerts *AlertsSummary `json:"alerts,omitempty"`
}

// AlertsSummary is the manifest's rollup of the alert engine's lifetime:
// filled by history.Store.ManifestSummary at shutdown.
type AlertsSummary struct {
	// Rules is the number of alert rules that were evaluated.
	Rules int `json:"rules"`
	// Samples is the number of sampler ticks taken over the run.
	Samples uint64 `json:"samples"`
	// Firing names the rules still firing at manifest write — a clean
	// shutdown after a healthy run leaves this empty.
	Firing []string `json:"firing"`
	// Transitions counts every firing/resolved state change over the run.
	Transitions int64 `json:"transitions"`
}

// DetectionSummary is the manifest's per-event provenance rollup,
// filled from a core.ChangeEvent's Explanation (see
// core.SummarizeDetections). Flow fields are empty when no weight
// verifiably moved between observed sites.
type DetectionSummary struct {
	At         int64   `json:"at"`
	Phi        float64 `json:"phi"`
	Baseline   float64 `json:"baseline"`
	Magnitude  float64 `json:"magnitude"`
	Verdict    string  `json:"verdict,omitempty"`
	Changed    int     `json:"changed,omitempty"`
	FlowFrom   string  `json:"flow_from,omitempty"`
	FlowTo     string  `json:"flow_to,omitempty"`
	FlowWeight float64 `json:"flow_weight,omitempty"`
}

// StageSeconds sums the recorded stage durations.
func (m *Manifest) StageSeconds() float64 {
	var sum float64
	for _, s := range m.Stages {
		sum += s.Seconds
	}
	return sum
}

// Stage returns the named stage record, or nil.
func (m *Manifest) Stage(name string) *StageRecord {
	for i := range m.Stages {
		if m.Stages[i].Name == name {
			return &m.Stages[i]
		}
	}
	return nil
}

// FillFromRegistry copies the registry's stage summary and metric
// snapshot into the manifest. No-op on a nil registry.
func (m *Manifest) FillFromRegistry(r *Registry) {
	if r == nil {
		return
	}
	m.Stages = r.StageSummary()
	m.Events = r.Events(0)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.Counters = make(map[string]int64, len(r.counters)+2)
	for k, v := range r.counters {
		m.Counters[k] = v.Value()
	}
	for k, v := range r.evictionCounters() {
		m.Counters[k] = v
	}
	m.Gauges = make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		m.Gauges[k] = v.Value()
	}
	if len(r.floats) > 0 {
		m.FloatCounters = make(map[string]float64, len(r.floats))
		for k, v := range r.floats {
			m.FloatCounters[k] = v.Value()
		}
	}
	if len(r.hists) > 0 {
		m.Histograms = make(map[string]HistogramSummary, len(r.hists))
		for k, v := range r.hists {
			m.Histograms[k] = v.Summary()
		}
	}
}

// WriteManifest writes the manifest as indented JSON to path.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads a manifest previously written by WriteManifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return &m, nil
}

// RuntimeSampler polls runtime.NumGoroutine and the heap allocation at
// a fixed interval, tracking peaks for the manifest. ReadMemStats
// briefly stops the world, so the interval should stay in the tens of
// milliseconds.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	peakG    int
	peakHeap uint64
}

// StartRuntimeSampler begins sampling in a background goroutine.
// interval <= 0 defaults to 25ms.
func StartRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *RuntimeSampler) sample() {
	g := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if g > s.peakG {
		s.peakG = g
	}
	if ms.HeapAlloc > s.peakHeap {
		s.peakHeap = ms.HeapAlloc
	}
	s.mu.Unlock()
}

// Stop takes a final sample, halts the sampler, and returns the peaks.
// Safe on a nil sampler (returns zeros).
func (s *RuntimeSampler) Stop() (peakGoroutines int, peakHeapBytes uint64) {
	if s == nil {
		return 0, 0
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakG, s.peakHeap
}

package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeHealth is a point-in-time view of runtime pressure, surfaced
// by the serve daemon's /status endpoint so load tests can correlate
// SLO drift (admission latency, queue depth) with what the runtime was
// doing at the time.
type RuntimeHealth struct {
	Goroutines     int     `json:"goroutines"`
	HeapBytes      uint64  `json:"heap_bytes"`
	GCPauseP99Secs float64 `json:"gc_pause_p99_seconds"`
}

// runtimeSamples are the runtime/metrics series health reads. The slice
// is recreated per read: metrics.Read mutates the sample values and
// ReadRuntimeHealth may be called concurrently from request handlers.
func runtimeSamples() []metrics.Sample {
	return []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
	}
}

// ReadRuntimeHealth samples the runtime: live goroutines, bytes in heap
// objects, and the p99 of the process-lifetime GC pause distribution.
func ReadRuntimeHealth() RuntimeHealth {
	samples := runtimeSamples()
	metrics.Read(samples)
	var h RuntimeHealth
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindBad {
			continue
		}
		switch s.Name {
		case "/sched/goroutines:goroutines":
			h.Goroutines = int(s.Value.Uint64())
		case "/memory/classes/heap/objects:bytes":
			h.HeapBytes = s.Value.Uint64()
		case "/gc/pauses:seconds":
			h.GCPauseP99Secs = histogramQuantile(s.Value.Float64Histogram(), 0.99)
		}
	}
	return h
}

// histogramQuantile estimates quantile q from a runtime/metrics
// histogram: find the bucket where the cumulative count crosses rank
// q·total and report its finite upper bound (the lower bound for the
// +Inf tail). Returns 0 for an empty histogram.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i+1] is bucket i's upper bound; clamp the +Inf
			// tail to the last finite edge.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				hi = h.Buckets[len(h.Buckets)-2]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-2]
}

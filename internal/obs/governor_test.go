package obs

import (
	"fmt"
	"math"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusDeterministic is the exposition-order regression
// test: two back-to-back scrapes of the same registry are byte-identical
// and families appear sorted by metric name, with series inside a family
// sorted by their full labeled name.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Registration order is deliberately unsorted.
	r.Gauge("zeta_depth").Set(3)
	r.Counter(`alpha_total{tenant="b"}`).Add(2)
	r.Histogram("mid_seconds").Observe(0.5)
	r.Counter(`alpha_total{tenant="a"}`).Add(1)
	r.FloatCounter("beta_seconds").Add(1.5)
	r.Counter("alpha_total").Inc()

	var a, b strings.Builder
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatalf("two scrapes differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}

	var families []string
	var series []string
	for _, line := range strings.Split(a.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, strings.Fields(rest)[0])
		}
		if line != "" && !strings.HasPrefix(line, "#") {
			series = append(series, strings.Fields(line)[0])
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
	ai := indexOf(series, `alpha_total{tenant="a"}`)
	bi := indexOf(series, `alpha_total{tenant="b"}`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("labeled series not sorted within family: a at %d, b at %d in %v", ai, bi, series)
	}
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// TestFlightSnapshotConsistency hammers the flight recorder with
// concurrent writers while readers take snapshots, asserting every
// snapshot is internally consistent: seqs strictly monotone with no
// gaps, and — once the ring has wrapped — the oldest retained event is
// exactly evicted+1. Reading Events and Evicted as two separate calls
// cannot make that guarantee; Snapshot's single lock acquisition can.
// Run under -race (make check does).
func TestFlightSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	log := r.Logger()
	const writers, perWriter = 4, 700 // 2800 events through a 1024 ring
	var wg sync.WaitGroup
	stop := make(chan struct{})

	readErr := make(chan string, 1)
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				events, evicted := r.flight.Snapshot(0)
				for j := 1; j < len(events); j++ {
					if events[j].Seq != events[j-1].Seq+1 {
						select {
						case readErr <- fmt.Sprintf("seq gap: %d then %d", events[j-1].Seq, events[j].Seq):
						default:
						}
						return
					}
				}
				if len(events) == flightCap && events[0].Seq != evicted+1 {
					select {
					case readErr <- fmt.Sprintf("full ring oldest seq %d != evicted+1 = %d", events[0].Seq, evicted+1):
					default:
					}
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				log.Info("event", "writer", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}

	events, evicted := r.flight.Snapshot(0)
	if want := uint64(writers*perWriter - flightCap); evicted != want {
		t.Fatalf("evicted = %d, want %d", evicted, want)
	}
	if len(events) != flightCap || events[0].Seq != evicted+1 {
		t.Fatalf("final snapshot: %d events, oldest seq %d, want %d events starting at %d",
			len(events), events[0].Seq, flightCap, evicted+1)
	}
}

// TestHistogramQuantileEdges covers the runtime-health quantile
// estimator's edge cases: nil, empty, single-bucket, and the +Inf tail
// clamp (the serve SLO path has these tests; this is the
// runtime/metrics path).
func TestHistogramQuantileEdges(t *testing.T) {
	if got := histogramQuantile(nil, 0.99); got != 0 {
		t.Fatalf("nil histogram: %v, want 0", got)
	}
	empty := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if got := histogramQuantile(empty, 0.5); got != 0 {
		t.Fatalf("empty histogram: %v, want 0", got)
	}
	single := &metrics.Float64Histogram{
		Counts:  []uint64{7},
		Buckets: []float64{0.25, 0.5},
	}
	if got := histogramQuantile(single, 0.99); got != 0.5 {
		t.Fatalf("single bucket: %v, want its upper bound 0.5", got)
	}
	infTail := &metrics.Float64Histogram{
		Counts:  []uint64{1, 9},
		Buckets: []float64{0, 1, math.Inf(+1)},
	}
	if got := histogramQuantile(infTail, 0.99); got != 1 {
		t.Fatalf("+Inf tail: %v, want clamp to last finite edge 1", got)
	}
	if got := histogramQuantile(infTail, 0.05); got != 1 {
		t.Fatalf("low quantile: %v, want first bucket's upper bound 1", got)
	}
}

// TestSeriesCapGovernor is the cardinality acceptance test at registry
// scale: 10k tenants against a 1k cap. The family stays at cap+1 series
// in /metrics (cap admitted plus __other__), every increment is
// preserved (overflow aggregates instead of dropping), shard-labeled
// series are never governed, and the dropped-series counter records the
// overflow.
func TestSeriesCapGovernor(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(1000)
	const tenants = 10_000
	family := "fenrir_serve_tenant_ingest_total"
	for i := 0; i < tenants; i++ {
		r.Counter(fmt.Sprintf("%s{tenant=%q}", family, fmt.Sprintf("t%05d", i))).Inc()
	}
	for k := 0; k < 4; k++ {
		r.Counter(fmt.Sprintf(`%s{shard="%d"}`, family, k)).Add(2500)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	var tenantSeries, shardSeries int
	var tenantSum int64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		name := strings.Fields(line)[0]
		if strings.Contains(name, `tenant="`) {
			tenantSeries++
			var v int64
			fmt.Sscanf(strings.Fields(line)[1], "%d", &v)
			tenantSum += v
		}
		if strings.Contains(name, `shard="`) {
			shardSeries++
		}
	}
	if tenantSeries != 1001 {
		t.Fatalf("%d tenant series exposed, want cap+1 = 1001", tenantSeries)
	}
	if tenantSum != tenants {
		t.Fatalf("tenant series sum to %d, want every increment preserved (%d)", tenantSum, tenants)
	}
	if shardSeries != 4 {
		t.Fatalf("%d shard series, want all 4 ungoverned", shardSeries)
	}
	if got := r.Counter(fmt.Sprintf("%s{tenant=%q}", family, OtherTenant)).Value(); got != tenants-1000 {
		t.Fatalf("__other__ holds %d, want the %d overflow increments", got, tenants-1000)
	}
	if got := r.Counter(DroppedSeriesMetric).Value(); got <= 0 {
		t.Fatal("dropped-series counter never moved")
	}

	// An admitted tenant keeps resolving to its own series after the cap
	// is hit; a brand-new one keeps collapsing.
	r.Counter(fmt.Sprintf("%s{tenant=%q}", family, "t00000")).Inc()
	if got := r.Counter(fmt.Sprintf("%s{tenant=%q}", family, "t00000")).Value(); got != 2 {
		t.Fatalf("admitted tenant counter = %d, want 2", got)
	}
}

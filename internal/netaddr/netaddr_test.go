package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.1.2.3", "192.168.255.1", "255.255.255.255", "128.9.0.1"}
	for _, s := range cases {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrRejectsGarbage(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1..2.3"}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestQuickAddrStringParse(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetipConversion(t *testing.T) {
	a := MustParseAddr("128.9.128.127")
	if got := a.Netip().String(); got != "128.9.128.127" {
		t.Fatalf("Netip = %s", got)
	}
}

func TestBlockBasics(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	b := a.Block()
	if b.First() != MustParseAddr("10.20.30.0") {
		t.Errorf("First = %v", b.First())
	}
	if b.Host(7) != MustParseAddr("10.20.30.7") {
		t.Errorf("Host(7) = %v", b.Host(7))
	}
	if b.String() != "10.20.30.0/24" {
		t.Errorf("String = %q", b.String())
	}
}

func TestIsPrivate(t *testing.T) {
	private := []string{"10.0.0.1", "10.255.255.255", "172.16.0.1", "172.31.9.9", "192.168.1.1"}
	public := []string{"9.255.255.255", "11.0.0.0", "172.15.255.255", "172.32.0.0", "192.167.1.1", "192.169.0.0", "8.8.8.8"}
	for _, s := range private {
		if !MustParseAddr(s).IsPrivate() {
			t.Errorf("%s should be private", s)
		}
	}
	for _, s := range public {
		if MustParseAddr(s).IsPrivate() {
			t.Errorf("%s should be public", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/16")
	if p.String() != "10.1.0.0/16" {
		t.Errorf("masked prefix = %q, want 10.1.0.0/16", p.String())
	}
	if !p.Contains(MustParseAddr("10.1.255.255")) {
		t.Error("Contains failed inside prefix")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Error("Contains succeeded outside prefix")
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "bogus/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

func TestPrefixZeroBits(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	if !p.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("/0 must contain everything")
	}
}

func TestContainsBlock(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.ContainsBlock(MustParseAddr("10.1.200.0").Block()) {
		t.Error("block inside /16 not contained")
	}
	if p.ContainsBlock(MustParseAddr("10.2.0.0").Block()) {
		t.Error("block outside /16 contained")
	}
	p30 := MustParsePrefix("10.1.0.0/30")
	if p30.ContainsBlock(MustParseAddr("10.1.0.0").Block()) {
		t.Error("/30 cannot contain a whole /24")
	}
}

func TestNumBlocksAndBlocks(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/22")
	if p.NumBlocks() != 4 {
		t.Fatalf("NumBlocks(/22) = %d, want 4", p.NumBlocks())
	}
	bs := p.Blocks()
	if len(bs) != 4 {
		t.Fatalf("Blocks length %d", len(bs))
	}
	if bs[0].String() != "10.1.0.0/24" || bs[3].String() != "10.1.3.0/24" {
		t.Errorf("Blocks = %v ... %v", bs[0], bs[3])
	}
	if MustParsePrefix("10.0.0.0/25").NumBlocks() != 0 {
		t.Error("/25 should report zero whole blocks")
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("shorter prefix should sort first at equal address")
	}
	if a.Compare(c) >= 0 || a.Compare(a) != 0 {
		t.Error("address ordering broken")
	}
}

func TestQuickPrefixContainsItsBlocks(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw%9) + 16 // /16../24
		p := Prefix{Addr: Addr(v), Bits: bits}.Masked()
		for _, b := range p.Blocks() {
			if !p.ContainsBlock(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package netaddr provides the IPv4 address arithmetic the measurement
// substrates are built on: addresses, CIDR prefixes, /24 blocks (the unit
// of measurement in Verfploeter, the USC hitlist, and the ECS sweeps), and
// a longest-prefix-match trie used by the BGP simulator's FIBs.
//
// We deliberately implement a compact uint32-based representation rather
// than using net.IP everywhere: the simulator routinely holds millions of
// block→catchment associations, and a 4-byte value key keeps those maps and
// slices dense. Conversions to net/netip are provided at the edges.
package netaddr

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// MustParseAddr parses dotted-quad text and panics on error. It is meant
// for tests and static tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not a dotted quad", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: bad octet %q in %q", p, s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Netip converts to a net/netip.Addr.
func (a Addr) Netip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// Block returns the /24 block containing a.
func (a Addr) Block() Block { return Block(a >> 8) }

// IsPrivate reports whether a falls in RFC 1918 space. Traceroute hops with
// private addresses are treated as unidentifiable by the cleaners, exactly
// as the paper describes for intermediate hops.
func (a Addr) IsPrivate() bool {
	switch {
	case a>>24 == 10: // 10.0.0.0/8
		return true
	case a>>20 == 0xAC1: // 172.16.0.0/12
		return true
	case a>>16 == 0xC0A8: // 192.168.0.0/16
		return true
	}
	return false
}

// Block is an IPv4 /24 block, identified by its top 24 bits.
type Block uint32

// BlockOf returns the block with the given /24 network address.
func BlockOf(a Addr) Block { return a.Block() }

// First returns the .0 address of the block.
func (b Block) First() Addr { return Addr(b) << 8 }

// Host returns the address with the given final octet inside the block.
func (b Block) Host(last byte) Addr { return Addr(b)<<8 | Addr(last) }

// Prefix returns the /24 CIDR prefix covering the block.
func (b Block) Prefix() Prefix { return Prefix{Addr: b.First(), Bits: 24} }

// String renders the block as its /24 prefix.
func (b Block) String() string { return b.Prefix().String() }

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr Addr
	Bits int
}

// MustParsePrefix parses CIDR text and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" CIDR text. The address is masked down
// to its network address.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q has no /length", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: bad prefix length in %q", s)
	}
	p := Prefix{Addr: addr, Bits: bits}
	return p.Masked(), nil
}

// Masked returns the prefix with host bits cleared.
func (p Prefix) Masked() Prefix {
	return Prefix{Addr: p.Addr & p.mask(), Bits: p.Bits}
}

func (p Prefix) mask() Addr {
	if p.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether a is inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.mask() == p.Addr&p.mask()
}

// ContainsBlock reports whether the whole /24 block is inside the prefix.
func (p Prefix) ContainsBlock(b Block) bool {
	if p.Bits > 24 {
		return false
	}
	return p.Contains(b.First())
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr & q.mask())
	}
	return q.Contains(p.Addr & p.mask())
}

// NumBlocks returns how many /24 blocks the prefix spans (0 if longer
// than /24).
func (p Prefix) NumBlocks() int {
	if p.Bits > 24 {
		return 0
	}
	return 1 << (24 - p.Bits)
}

// Blocks returns every /24 block inside the prefix, in address order.
// Callers should check NumBlocks first for very short prefixes.
func (p Prefix) Blocks() []Block {
	n := p.NumBlocks()
	if n == 0 {
		return nil
	}
	out := make([]Block, n)
	first := Block(p.Addr >> 8)
	for i := range out {
		out[i] = first + Block(i)
	}
	return out
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Bits)
}

// Compare orders prefixes by address, then by length (shorter first).
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return 0
}

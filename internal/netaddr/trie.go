package netaddr

// Trie is a binary (path-uncompressed) radix trie mapping IPv4 prefixes to
// values, supporting longest-prefix match. It backs every simulated FIB
// and the RouteViews-style routable-prefix table used to build hitlists.
//
// The trie is generic over the stored value so the BGP simulator can store
// rich route entries while the hitlist builder stores small ints.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

func bit(a Addr, i int) int { return int(a>>(31-i)) & 1 }

// Insert stores val at prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, val V) {
	p = p.Masked()
	n := t.root
	for i := 0; i < p.Bits; i++ {
		b := bit(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val = val
	n.set = true
}

// Delete removes prefix p. It reports whether the prefix was present.
// Interior nodes are left in place; the trie is append-heavy in practice
// (FIB churn replaces values rather than deleting), so we keep deletion
// simple rather than pruning.
func (t *Trie[V]) Delete(p Prefix) bool {
	p = p.Masked()
	n := t.root
	for i := 0; i < p.Bits; i++ {
		b := bit(p.Addr, i)
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val = zero
	n.set = false
	t.size--
	return true
}

// Lookup returns the value of the longest prefix containing a.
func (t *Trie[V]) Lookup(a Addr) (val V, p Prefix, ok bool) {
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			val, p, ok = n.val, Prefix{Addr: a, Bits: i}.Masked(), true
		}
		if i == 32 {
			return
		}
		n = n.child[bit(a, i)]
		if n == nil {
			return
		}
	}
}

// Get returns the value stored exactly at prefix p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	p = p.Masked()
	n := t.root
	for i := 0; i < p.Bits; i++ {
		n = n.child[bit(p.Addr, i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

// Walk visits every stored prefix in trie (address) order. Returning false
// from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p Prefix, val V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *trieNode[V], addr Addr, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(Prefix{Addr: addr, Bits: depth}, n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<(31-depth), depth+1, fn)
}

package netaddr

import (
	"testing"
	"testing/quick"
)

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "ten-one-two")

	cases := []struct {
		addr string
		want string
		bits int
	}{
		{"10.1.2.3", "ten-one-two", 24},
		{"10.1.9.9", "ten-one", 16},
		{"10.200.0.1", "ten", 8},
		{"192.0.2.1", "default", 0},
	}
	for _, c := range cases {
		v, p, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want || p.Bits != c.bits {
			t.Errorf("Lookup(%s) = %q /%d ok=%v, want %q /%d", c.addr, v, p.Bits, ok, c.want, c.bits)
		}
	}
}

func TestTrieLookupMissWithoutDefault(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside stored prefixes should miss")
	}
}

func TestTrieInsertReplaces(t *testing.T) {
	tr := NewTrie[int]()
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, ok := tr.Get(p); !ok || v != 2 {
		t.Fatalf("Get = %d ok=%v", v, ok)
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	tr.Insert(p8, 8)
	tr.Insert(p16, 16)
	if !tr.Delete(p16) {
		t.Fatal("Delete existing returned false")
	}
	if tr.Delete(p16) {
		t.Fatal("double Delete returned true")
	}
	v, _, ok := tr.Lookup(MustParseAddr("10.1.2.3"))
	if !ok || v != 8 {
		t.Fatalf("after delete, lookup = %d ok=%v, want fall back to /8", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestTrieHostRoute(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("192.0.2.1/32"), "host")
	v, p, ok := tr.Lookup(MustParseAddr("192.0.2.1"))
	if !ok || v != "host" || p.Bits != 32 {
		t.Fatalf("host route lookup = %q /%d ok=%v", v, p.Bits, ok)
	}
	if _, _, ok := tr.Lookup(MustParseAddr("192.0.2.2")); ok {
		t.Fatal("adjacent address matched a /32")
	}
}

func TestTrieWalkOrderAndCompleteness(t *testing.T) {
	tr := NewTrie[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "9.0.0.0/8", "11.2.3.0/24", "0.0.0.0/0"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ps) {
		t.Fatalf("Walk visited %d prefixes, want %d", len(got), len(ps))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) > 0 {
			t.Fatalf("Walk out of order: %v before %v", got[i-1], got[i])
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	for i := 0; i < 10; i++ {
		tr.Insert(Prefix{Addr: Addr(i) << 24, Bits: 8}, i)
	}
	n := 0
	tr.Walk(func(Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

// Property: for random stored /k prefixes, Lookup of any address inside one
// returns a prefix that really contains the address.
func TestQuickTrieLookupConsistent(t *testing.T) {
	f := func(addrs []uint32) bool {
		tr := NewTrie[uint32]()
		for _, v := range addrs {
			p := Prefix{Addr: Addr(v), Bits: 8 + int(v%17)}.Masked()
			tr.Insert(p, v)
		}
		for _, v := range addrs {
			a := Addr(v)
			if _, p, ok := tr.Lookup(a); ok && !p.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := NewTrie[int]()
	for i := 0; i < 100000; i++ {
		tr.Insert(Prefix{Addr: Addr(i * 2654435761), Bits: 8 + i%17}.Masked(), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(Addr(i * 40503))
	}
}

package faults

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"fenrir/internal/obs"
)

func TestZeroProfileYieldsNilInjector(t *testing.T) {
	if inj := New(Profile{}, 7, nil); inj != nil {
		t.Fatal("zero profile built an injector")
	}
	none, ok := ByName("none")
	if !ok || !none.Zero() {
		t.Fatalf("profile none = %+v ok=%v", none, ok)
	}
	if inj := New(none, 7, nil); inj != nil {
		t.Fatal("profile none built an injector")
	}
}

// TestNilInjectorIsPassThrough pins the byte-identity contract: every
// method on a nil injector must return its input untouched (the same
// slice, not a copy) and report nothing.
func TestNilInjectorIsPassThrough(t *testing.T) {
	var inj *Injector
	b := []byte{1, 2, 3}
	out, drop, dup := inj.Datagram("x", b)
	if &out[0] != &b[0] || drop || dup {
		t.Fatal("nil Datagram not a pass-through")
	}
	if s := inj.Stream("x", b); &s[0] != &b[0] {
		t.Fatal("nil Stream not a pass-through")
	}
	if inj.Blackout("x", 1, 0) {
		t.Fatal("nil Blackout fired")
	}
	if inj.SiteLabel("x", "LAX") != "LAX" {
		t.Fatal("nil SiteLabel changed the label")
	}
	if inj.DelayMs("x") != 0 {
		t.Fatal("nil DelayMs nonzero")
	}
	if inj.Report() != nil {
		t.Fatal("nil Report nonzero")
	}
	if inj.NewBackoff("x", DefaultRetryPolicy()) != nil {
		t.Fatal("nil injector built a backoff")
	}
	inj.Quarantine("r", 3) // must not panic
	var bo *Backoff
	if bo.Allow(1) {
		t.Fatal("nil backoff allowed a retry")
	}
	if bo.SpentMs() != 0 {
		t.Fatal("nil backoff spent budget")
	}
}

func TestNamedProfiles(t *testing.T) {
	want := []string{"none", "light", "heavy", "blackout", "corrupt"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want[1:] {
		p, ok := ByName(name)
		if !ok || p.Zero() {
			t.Fatalf("profile %s missing or zero", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown profile resolved")
	}
}

// drive pushes a fixed workload through an injector and returns the
// delivered bytes plus the report, for determinism comparisons.
func drive(inj *Injector) ([]byte, *Report) {
	var out []byte
	payload := []byte("the quick brown fox jumps over the lazy dog")
	for i := 0; i < 400; i++ {
		b, drop, dup := inj.Datagram("dgram", payload)
		if !drop {
			out = append(out, b...)
			if dup {
				out = append(out, b...)
			}
		}
		out = append(out, inj.Stream("stream", payload)...)
		out = append(out, inj.SiteLabel("site", "LAX")...)
		if inj.Blackout("bo", uint64(i%17), i) {
			out = append(out, 'B')
		}
		if inj.DelayMs("delay") > 0 {
			out = append(out, 'D')
		}
	}
	return out, inj.Report()
}

func TestSameSeedSameFaults(t *testing.T) {
	heavy, _ := ByName("heavy")
	out1, rep1 := drive(New(heavy, 1234, nil))
	out2, rep2 := drive(New(heavy, 1234, nil))
	if !bytes.Equal(out1, out2) {
		t.Fatal("same seed produced different fault sequences")
	}
	if !reflect.DeepEqual(rep1.Injected, rep2.Injected) {
		t.Fatalf("same seed, different reports: %v vs %v", rep1.Injected, rep2.Injected)
	}
	out3, _ := drive(New(heavy, 4321, nil))
	if bytes.Equal(out1, out3) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if rep1.TotalInjected() == 0 {
		t.Fatal("heavy profile injected nothing over 400 rounds")
	}
}

func TestDatagramLossBurstsAndReorder(t *testing.T) {
	prof := Profile{Name: "t", LossStart: 0.2, LossBurstMean: 3}
	inj := New(prof, 5, nil)
	drops := 0
	for i := 0; i < 500; i++ {
		if _, drop, _ := inj.Datagram("d", []byte{byte(i)}); drop {
			drops++
		}
	}
	// With burst losses the drop count must exceed the start rate alone.
	if drops < 100 {
		t.Fatalf("drops = %d, bursts not extending losses", drops)
	}

	// Reorder: with rate 1 the first datagram is held (dropped now), and
	// each later one delivers its predecessor.
	inj = New(Profile{Name: "t", ReorderRate: 1}, 5, nil)
	if _, drop, _ := inj.Datagram("d", []byte{1}); !drop {
		t.Fatal("first datagram under full reorder was delivered")
	}
	out, drop, _ := inj.Datagram("d", []byte{2})
	if drop || len(out) != 1 || out[0] != 1 {
		t.Fatalf("second datagram delivered %v, want held [1]", out)
	}
	out, _, _ = inj.Datagram("d", []byte{3})
	if out[0] != 2 {
		t.Fatalf("third datagram delivered %v, want held [2]", out)
	}
}

func TestStreamCorruptionAndTruncation(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 256)
	inj := New(Profile{Name: "t", TruncateRate: 1}, 9, nil)
	out := inj.Stream("s", payload)
	if len(out) >= len(payload) {
		t.Fatalf("truncation did not shorten: %d >= %d", len(out), len(payload))
	}
	inj = New(Profile{Name: "t", CorruptRate: 1}, 9, nil)
	out = inj.Stream("s", payload)
	if len(out) != len(payload) {
		t.Fatal("corruption changed the length")
	}
	diff := 0
	for i := range out {
		if out[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	if payload[0] != 0xAA {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestSiteLabelStuckAndBogus(t *testing.T) {
	inj := New(Profile{Name: "t", BogusSiteRate: 1}, 3, nil)
	if got := inj.SiteLabel("s", "LAX"); got != BogusSite {
		t.Fatalf("bogus rate 1 returned %q", got)
	}
	if got := inj.SiteLabel("s", ""); got != "" {
		t.Fatalf("empty label faulted to %q", got)
	}

	inj = New(Profile{Name: "t", StuckSiteRate: 1}, 3, nil)
	if got := inj.SiteLabel("s", "LAX"); got != "LAX" {
		t.Fatalf("first observation = %q, nothing to be stuck on yet", got)
	}
	if got := inj.SiteLabel("s", "MIA"); got != "LAX" {
		t.Fatalf("stuck rate 1 returned %q, want replayed LAX", got)
	}
}

func TestBlackoutWindowsAreStatelessAndAligned(t *testing.T) {
	prof, _ := ByName("blackout")
	inj := New(prof, 11, nil)
	fired := false
	for e := 0; e < 64; e++ {
		a := inj.Blackout("s", 42, e)
		// Stateless: order and repetition must not matter.
		if b := inj.Blackout("s", 42, e); a != b {
			t.Fatalf("epoch %d: blackout answer changed on re-query", e)
		}
		if a {
			fired = true
			if !inj.Blackout("s", 42, e-e%prof.BlackoutLen) {
				t.Fatalf("epoch %d dark but its window start is not", e)
			}
		}
	}
	// Different entities and substrates decide independently.
	same := true
	for e := 0; e < 64; e++ {
		if inj.Blackout("s", 42, e) != inj.Blackout("s", 43, e) {
			same = false
		}
	}
	if fired && same {
		t.Fatal("two entities share an identical 64-epoch blackout pattern")
	}
}

func TestBackoffBudget(t *testing.T) {
	inj := New(Profile{Name: "t", LossStart: 0.5}, 1, nil)
	b := inj.NewBackoff("s", RetryPolicy{MaxAttempts: 4, BaseBackoffMs: 100, MaxBackoffMs: 150, BudgetMs: 1000})
	// attempt 1: 100ms, attempt 2: 200→capped 150, attempt 3: capped 150;
	// attempt 4 hits MaxAttempts.
	for i := 1; i <= 3; i++ {
		if !b.Allow(i) {
			t.Fatalf("attempt %d refused inside budget", i)
		}
	}
	if b.Allow(4) {
		t.Fatal("attempt past MaxAttempts allowed")
	}
	if got := b.SpentMs(); got != 400 {
		t.Fatalf("spent = %v ms, want 400", got)
	}

	// Budget exhaustion cuts retries before MaxAttempts.
	b = inj.NewBackoff("s", RetryPolicy{MaxAttempts: 10, BaseBackoffMs: 100, MaxBackoffMs: 100, BudgetMs: 250})
	allowed := 0
	for i := 1; i <= 9; i++ {
		if b.Allow(i) {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d retries on a 250 ms budget of 100 ms steps, want 2", allowed)
	}

	rep := inj.Report()
	if rep.Retries["s"] != 5 {
		t.Fatalf("retries recorded = %d, want 5", rep.Retries["s"])
	}
}

func TestInjectedErrorMatchesSentinel(t *testing.T) {
	err := &Error{Substrate: "atlas", Kind: "loss"}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("typed error does not match ErrInjected")
	}
	if err.Error() != "faults: injected loss on atlas" {
		t.Fatalf("error text = %q", err.Error())
	}
}

func TestCountersMirrorToRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	inj := New(Profile{Name: "t", LossStart: 1}, 2, reg)
	inj.Datagram("atlas", []byte{1})
	inj.Quarantine("invalid-site", 0) // materialize at zero
	inj.Quarantine("bad-record", 3)
	if got := reg.Counter(`fenrir_faults_injected_total{substrate="atlas",kind="loss"}`).Value(); got != 1 {
		t.Fatalf("injected counter = %d", got)
	}
	if got := reg.Counter(`fenrir_quarantined_total{reason="invalid-site"}`).Value(); got != 0 {
		t.Fatalf("materialized counter = %d, want explicit 0", got)
	}
	if got := reg.Counter(`fenrir_quarantined_total{reason="bad-record"}`).Value(); got != 3 {
		t.Fatalf("quarantine counter = %d", got)
	}
	rep := inj.Report()
	if rep.TotalQuarantined() != 3 || rep.Quarantined["invalid-site"] != 0 {
		t.Fatalf("report quarantine = %+v", rep.Quarantined)
	}
	if rep.String() == "" || (&Report{}).TotalInjected() != 0 {
		t.Fatal("report rendering broke")
	}
	var nilRep *Report
	if nilRep.String() != "faults: none" || nilRep.TotalInjected() != 0 {
		t.Fatal("nil report accessors broke")
	}
}

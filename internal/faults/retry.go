package faults

import "math"

// RetryPolicy bounds an engine's retry-with-exponential-backoff loop. The
// clock is virtual (simulated milliseconds, never slept), so budgets are
// deterministic and tests run instantly.
type RetryPolicy struct {
	// MaxAttempts is the total number of probe attempts allowed, first
	// attempt included.
	MaxAttempts int
	// BaseBackoffMs is the backoff before the first retry; each further
	// retry doubles it, capped at MaxBackoffMs.
	BaseBackoffMs float64
	MaxBackoffMs  float64
	// BudgetMs caps the cumulative backoff spent by one Backoff instance
	// (one engine on one substrate); past it, retries stop even if
	// MaxAttempts remain.
	BudgetMs float64
}

// DefaultRetryPolicy is the bounded budget wired into the scenario
// runners: up to 3 attempts, 50 ms → 800 ms exponential backoff, 30 s
// total per substrate.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoffMs: 50, MaxBackoffMs: 800, BudgetMs: 30000}
}

// Backoff meters retries for one engine on one substrate. A nil *Backoff
// never allows a retry, which is how engines keep their legacy fixed-count
// retry loops (and their exact dataplane call sequence) when no fault
// layer is active.
type Backoff struct {
	pol       RetryPolicy
	inj       *Injector
	substrate string
	spentMs   float64
}

// NewBackoff builds a retry meter for substrate. Nil injector: nil — the
// legacy (fixed Retries field) path stays in force.
func (inj *Injector) NewBackoff(substrate string, pol RetryPolicy) *Backoff {
	if inj == nil {
		return nil
	}
	if pol.MaxAttempts <= 0 {
		pol = DefaultRetryPolicy()
	}
	return &Backoff{pol: pol, inj: inj, substrate: substrate}
}

// Allow reports whether a retry may proceed after `attempt` attempts have
// already failed (so the first call passes attempt=1). It charges the
// exponential backoff to the virtual budget; once MaxAttempts or BudgetMs
// is exhausted it answers false. Nil receiver: always false.
func (b *Backoff) Allow(attempt int) bool {
	if b == nil {
		return false
	}
	if attempt >= b.pol.MaxAttempts {
		return false
	}
	d := b.pol.BaseBackoffMs * math.Pow(2, float64(attempt-1))
	if d > b.pol.MaxBackoffMs {
		d = b.pol.MaxBackoffMs
	}
	if b.pol.BudgetMs > 0 && b.spentMs+d > b.pol.BudgetMs {
		return false
	}
	b.spentMs += d
	b.inj.retry(b.substrate)
	return true
}

// SpentMs reports the virtual backoff milliseconds consumed so far.
func (b *Backoff) SpentMs() float64 {
	if b == nil {
		return 0
	}
	return b.spentMs
}

// Package faults is a deterministic, seed-driven fault-injection layer
// for Fenrir's measurement paths. It wraps the simulated forwarding plane
// (internal/dataplane) and the byte streams of the real-socket servers so
// every substrate — verfploeter pings, traceroute TTL walks, Atlas CHAOS
// queries, EDNS-CS sweeps, BGP sessions, MRT files, UDP datagrams — can be
// stressed reproducibly with packet loss bursts, duplication, reordering,
// payload corruption, delay spikes, stuck or bogus site labels, truncated
// records, and vantage-point blackouts.
//
// Two invariants anchor the design:
//
//  1. Zero-fault byte identity. New returns a nil *Injector for the zero
//     profile, and every method on a nil *Injector is a no-op that passes
//     its input through untouched. Wrap returns the wrapped plane itself.
//     A run with profile "none" therefore executes exactly the same code
//     and draws exactly the same dataplane RNG sequence as a build without
//     this package, so its outputs are byte-identical.
//
//  2. Seeded determinism. All injection decisions come from rng streams
//     split off one seed, drawn in observation order. Observation is
//     serial in every scenario (only the similarity matrix parallelises),
//     so the same seed produces the identical fault sequence — and
//     identical pipeline outputs — at any parallelism.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fenrir/internal/obs"
	"fenrir/internal/rng"
)

// Profile is a named set of fault rates. All rates are probabilities per
// opportunity (per datagram, per probe, per stream, per blackout window);
// the zero value injects nothing.
type Profile struct {
	Name string

	// LossStart is the per-message probability that a loss burst begins;
	// once started, a burst drops LossBurstMean further messages on
	// average (exponentially distributed), modelling correlated loss.
	LossStart     float64
	LossBurstMean float64

	// DupRate duplicates a delivered datagram; ReorderRate holds a
	// datagram back and delivers it after its successor.
	DupRate     float64
	ReorderRate float64

	// CorruptRate flips one bit of a payload. Checksummed formats (ICMP)
	// then fail verification and degrade honestly to a timeout; formats
	// without end-to-end checksums (DNS) may deliver garbled data, which
	// is exactly what the cleaning stage must survive.
	CorruptRate float64

	// DelaySpikeRate adds a DelaySpikeMs-scale spike to a reply's RTT.
	DelaySpikeRate float64
	DelaySpikeMs   float64

	// StuckSiteRate replays the previously observed site label instead of
	// the current one (a stale cache / stuck frontend); BogusSiteRate
	// substitutes a label no operator site list contains.
	StuckSiteRate float64
	BogusSiteRate float64

	// TruncateRate cuts a byte stream (BGP session, MRT file) short.
	TruncateRate float64

	// BlackoutRate darkens a vantage point for BlackoutLen consecutive
	// epochs: within a blackout window every probe from that entity times
	// out. The decision is a stateless hash of (seed, entity, window), so
	// it is reproducible regardless of call order.
	BlackoutRate float64
	BlackoutLen  int
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool {
	return p.LossStart == 0 && p.DupRate == 0 && p.ReorderRate == 0 &&
		p.CorruptRate == 0 && p.DelaySpikeRate == 0 && p.StuckSiteRate == 0 &&
		p.BogusSiteRate == 0 && p.TruncateRate == 0 && p.BlackoutRate == 0
}

// Named profiles, selectable via cmd/fenrir -faults.
var profiles = []Profile{
	{Name: "none"},
	{
		Name:      "light",
		LossStart: 0.01, LossBurstMean: 2,
		DupRate: 0.005, ReorderRate: 0.005,
		CorruptRate:    0.005,
		DelaySpikeRate: 0.01, DelaySpikeMs: 250,
		StuckSiteRate: 0.002, BogusSiteRate: 0.002,
		TruncateRate: 0.01,
		BlackoutRate: 0.005, BlackoutLen: 3,
	},
	{
		Name:      "heavy",
		LossStart: 0.05, LossBurstMean: 4,
		DupRate: 0.02, ReorderRate: 0.02,
		CorruptRate:    0.03,
		DelaySpikeRate: 0.05, DelaySpikeMs: 800,
		StuckSiteRate: 0.01, BogusSiteRate: 0.01,
		TruncateRate: 0.05,
		BlackoutRate: 0.02, BlackoutLen: 5,
	},
	{
		// The B-Root 2023-07..12 shape: long vantage-point dark windows
		// with mild background loss and everything else clean.
		Name:          "blackout",
		LossStart:     0.02,
		LossBurstMean: 3,
		BlackoutRate:  0.15, BlackoutLen: 4,
	},
	{
		// Data-quality stress: payloads and labels lie, packets arrive.
		Name:          "corrupt",
		CorruptRate:   0.08,
		StuckSiteRate: 0.02, BogusSiteRate: 0.03,
		TruncateRate: 0.08,
	},
}

// ByName looks up a named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the selectable profile names in definition order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// BogusSite is the label substituted by bogus-site faults. It decodes (via
// the engines' last-dash-token rule) to an identifier outside every
// operator site list, so RemoveIncorrect/Quarantine must catch it.
const BogusSite = "bogus-zz9"

// ErrInjected is the sentinel matched by errors.Is for every error this
// package fabricates.
var ErrInjected = errors.New("faults: injected fault")

// Error is a typed injected-fault error carrying where and what.
type Error struct {
	Substrate string
	Kind      string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s on %s", e.Kind, e.Substrate)
}

// Is makes errors.Is(err, ErrInjected) match.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Injector injects faults per a Profile. The zero-profile Injector is nil,
// and every method is safe (and a pass-through no-op) on a nil receiver.
// Injection decisions are serialized under one mutex; within a serial
// observation pass the draw order — and therefore the fault sequence — is
// fully determined by the seed.
type Injector struct {
	prof Profile
	seed uint64
	reg  *obs.Registry

	mu       sync.Mutex
	rLoss    *rng.Source
	rDup     *rng.Source
	rReorder *rng.Source
	rCorrupt *rng.Source
	rDelay   *rng.Source
	rSite    *rng.Source
	rTrunc   *rng.Source

	lossLeft    map[string]int    // per-substrate remaining burst length
	held        map[string][]byte // per-substrate reorder hold slot
	stuck       map[string]string // per-substrate last observed site label
	injected    map[string]int    // "substrate/kind" → count
	retries     map[string]int    // substrate → retry count
	quarantined map[string]int    // reason → observation count
}

// New builds an injector for the profile. The zero profile (including
// "none") yields nil, which downstream code treats as "no fault layer at
// all" — the zero-fault byte-identity guarantee rests on that. reg may be
// nil; when set, injections and quarantines are mirrored to obs counters.
func New(prof Profile, seed uint64, reg *obs.Registry) *Injector {
	if prof.Zero() {
		return nil
	}
	base := rng.New(seed)
	return &Injector{
		prof:        prof,
		seed:        seed,
		reg:         reg,
		rLoss:       base.Split("faults-loss"),
		rDup:        base.Split("faults-dup"),
		rReorder:    base.Split("faults-reorder"),
		rCorrupt:    base.Split("faults-corrupt"),
		rDelay:      base.Split("faults-delay"),
		rSite:       base.Split("faults-site"),
		rTrunc:      base.Split("faults-trunc"),
		lossLeft:    make(map[string]int),
		held:        make(map[string][]byte),
		stuck:       make(map[string]string),
		injected:    make(map[string]int),
		retries:     make(map[string]int),
		quarantined: make(map[string]int),
	}
}

// Profile returns the active profile (zero for nil).
func (inj *Injector) Profile() Profile {
	if inj == nil {
		return Profile{}
	}
	return inj.prof
}

// Seed returns the fault seed (0 for nil).
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// count records one injected fault; callers hold inj.mu. Each injection
// also lands in the flight recorder, so /debug/events shows the recent
// fault history alongside quarantines and retries.
func (inj *Injector) count(substrate, kind string) {
	inj.injected[substrate+"/"+kind]++
	inj.reg.Counter(fmt.Sprintf("fenrir_faults_injected_total{substrate=%q,kind=%q}", substrate, kind)).Inc()
	inj.reg.Logger().Info("fault injected", "substrate", substrate, "kind", kind)
}

// lose runs the per-substrate loss-burst machine: a started burst eats
// the next few messages too. Callers hold inj.mu.
func (inj *Injector) lose(substrate string) bool {
	if left := inj.lossLeft[substrate]; left > 0 {
		inj.lossLeft[substrate] = left - 1
		inj.count(substrate, "loss")
		return true
	}
	if inj.prof.LossStart > 0 && inj.rLoss.Bool(inj.prof.LossStart) {
		extra := 0
		if inj.prof.LossBurstMean > 0 {
			extra = int(inj.rLoss.ExpFloat64() * inj.prof.LossBurstMean)
		}
		inj.lossLeft[substrate] = extra
		inj.count(substrate, "loss")
		return true
	}
	return false
}

// corruptBytes flips one bit of a copy of b. Callers hold inj.mu.
func (inj *Injector) corruptBytes(substrate string, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	idx := inj.rCorrupt.Intn(len(out))
	out[idx] ^= 1 << inj.rCorrupt.Intn(8)
	inj.count(substrate, "corrupt")
	return out
}

// Datagram passes one datagram through the fault model and reports how to
// deliver it: out is the (possibly corrupted or reordered) payload, drop
// asks the caller to discard it, dup asks for a second delivery. Nil
// injector: (b, false, false).
func (inj *Injector) Datagram(substrate string, b []byte) (out []byte, drop, dup bool) {
	if inj == nil {
		return b, false, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.lose(substrate) {
		return nil, true, false
	}
	out = b
	if inj.prof.CorruptRate > 0 && inj.rCorrupt.Bool(inj.prof.CorruptRate) {
		out = inj.corruptBytes(substrate, out)
	}
	if inj.prof.ReorderRate > 0 && inj.rReorder.Bool(inj.prof.ReorderRate) {
		// Hold this datagram; deliver the previously held one instead, or
		// nothing if the slot was empty (it will ride out with a later
		// datagram, i.e. arrive out of order).
		prev := inj.held[substrate]
		inj.held[substrate] = append([]byte(nil), out...)
		inj.count(substrate, "reorder")
		if prev == nil {
			return nil, true, false
		}
		out = prev
	} else if prev := inj.held[substrate]; prev != nil {
		// Flush the hold slot: deliver the held datagram now (late), and
		// let the current one take its place so both eventually arrive.
		inj.held[substrate] = append([]byte(nil), out...)
		out = prev
	}
	if inj.prof.DupRate > 0 && inj.rDup.Bool(inj.prof.DupRate) {
		inj.count(substrate, "duplicate")
		dup = true
	}
	return out, false, dup
}

// Stream passes a whole byte stream (a BGP session transcript, an MRT
// file) through the corruption and truncation faults. Nil injector: b.
func (inj *Injector) Stream(substrate string, b []byte) []byte {
	if inj == nil || len(b) == 0 {
		return b
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := b
	if inj.prof.CorruptRate > 0 && inj.rCorrupt.Bool(inj.prof.CorruptRate) {
		out = inj.corruptBytes(substrate, out)
	}
	if inj.prof.TruncateRate > 0 && inj.rTrunc.Bool(inj.prof.TruncateRate) {
		cut := inj.rTrunc.Intn(len(out))
		out = append([]byte(nil), out[:cut]...)
		inj.count(substrate, "truncate")
	}
	return out
}

// Blackout reports whether entity (a vantage point, keyed by e.g. its
// source address) is dark at epoch. The decision hashes (seed, substrate,
// entity, epoch/BlackoutLen) statelessly — the same triple always answers
// the same, independent of call order — so whole BlackoutLen-epoch windows
// go dark per entity, like a vantage point that stopped reporting.
func (inj *Injector) Blackout(substrate string, entity uint64, epoch int) bool {
	if inj == nil || inj.prof.BlackoutRate <= 0 {
		return false
	}
	ln := inj.prof.BlackoutLen
	if ln <= 0 {
		ln = 1
	}
	if epoch < 0 {
		epoch = 0
	}
	h := inj.seed ^ entity*0x9e3779b97f4a7c15 ^ uint64(epoch/ln)*0xbf58476d1ce4e5b9
	for i := 0; i < len(substrate); i++ {
		h = (h ^ uint64(substrate[i])) * 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	dark := float64(h>>11)/(1<<53) < inj.prof.BlackoutRate
	if dark {
		inj.mu.Lock()
		inj.count(substrate, "blackout")
		inj.mu.Unlock()
	}
	return dark
}

// SiteLabel passes an observed site label through the stuck/bogus faults:
// occasionally the previously seen label is replayed, or a label outside
// any site list is substituted. Empty labels pass through. Nil injector:
// site unchanged.
func (inj *Injector) SiteLabel(substrate, site string) string {
	if inj == nil || site == "" {
		return site
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.prof.BogusSiteRate > 0 && inj.rSite.Bool(inj.prof.BogusSiteRate) {
		inj.count(substrate, "bogus-site")
		return BogusSite
	}
	prev, have := inj.stuck[substrate]
	fire := inj.prof.StuckSiteRate > 0 && inj.rSite.Bool(inj.prof.StuckSiteRate)
	if !fire || !have {
		inj.stuck[substrate] = site
	}
	if fire && have && prev != site {
		inj.count(substrate, "stuck-site")
		return prev
	}
	return site
}

// DelayMs returns an injected delay spike in milliseconds (0 most of the
// time). Nil injector: 0.
func (inj *Injector) DelayMs(substrate string) float64 {
	if inj == nil || inj.prof.DelaySpikeRate <= 0 {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.rDelay.Bool(inj.prof.DelaySpikeRate) {
		return 0
	}
	inj.count(substrate, "delay-spike")
	return inj.prof.DelaySpikeMs * (0.5 + inj.rDelay.Float64())
}

// Quarantine records n observations quarantined at an ingest boundary for
// the given reason, mirroring to the obs counter
// fenrir_quarantined_total{reason=...}. n may be 0 to materialize the
// counter (so manifests show an explicit zero). Nil injector: no-op.
func (inj *Injector) Quarantine(reason string, n int) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.quarantined[reason] += n
	inj.reg.Counter(fmt.Sprintf("fenrir_quarantined_total{reason=%q}", reason)).Add(int64(n))
	if n > 0 {
		inj.reg.Logger().Warn("observations quarantined", "reason", reason, "count", n)
	}
}

// retry records one retry attempt granted to substrate.
func (inj *Injector) retry(substrate string) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.retries[substrate]++
	inj.reg.Counter(fmt.Sprintf("fenrir_fault_retries_total{substrate=%q}", substrate)).Inc()
	inj.reg.Logger().Info("probe retried", "substrate", substrate)
}

// Report is a snapshot of everything the injector did, attached to
// scenario results and printed by cmd/fenrir.
type Report struct {
	Profile     string         `json:"profile"`
	Seed        uint64         `json:"seed"`
	Injected    map[string]int `json:"injected"`    // "substrate/kind" → count
	Retries     map[string]int `json:"retries"`     // substrate → count
	Quarantined map[string]int `json:"quarantined"` // reason → count
}

// Report snapshots the injector's statistics. Nil injector: nil.
func (inj *Injector) Report() *Report {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	r := &Report{
		Profile:     inj.prof.Name,
		Seed:        inj.seed,
		Injected:    make(map[string]int, len(inj.injected)),
		Retries:     make(map[string]int, len(inj.retries)),
		Quarantined: make(map[string]int, len(inj.quarantined)),
	}
	for k, v := range inj.injected {
		r.Injected[k] = v
	}
	for k, v := range inj.retries {
		r.Retries[k] = v
	}
	for k, v := range inj.quarantined {
		r.Quarantined[k] = v
	}
	return r
}

// TotalInjected sums injected fault counts across substrates and kinds.
func (r *Report) TotalInjected() int {
	if r == nil {
		return 0
	}
	total := 0
	for _, v := range r.Injected {
		total += v
	}
	return total
}

// TotalQuarantined sums quarantined observation counts across reasons.
func (r *Report) TotalQuarantined() int {
	if r == nil {
		return 0
	}
	total := 0
	for _, v := range r.Quarantined {
		total += v
	}
	return total
}

// String renders a stable, human-readable multi-line summary.
func (r *Report) String() string {
	if r == nil {
		return "faults: none"
	}
	out := fmt.Sprintf("faults: profile=%s seed=%d injected=%d quarantined=%d\n",
		r.Profile, r.Seed, r.TotalInjected(), r.TotalQuarantined())
	for _, k := range sortedKeys(r.Injected) {
		out += fmt.Sprintf("  injected   %-28s %d\n", k, r.Injected[k])
	}
	for _, k := range sortedKeys(r.Retries) {
		out += fmt.Sprintf("  retries    %-28s %d\n", k, r.Retries[k])
	}
	for _, k := range sortedKeys(r.Quarantined) {
		out += fmt.Sprintf("  quarantine %-28s %d\n", k, r.Quarantined[k])
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

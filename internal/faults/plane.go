package faults

import (
	"encoding/binary"

	"fenrir/internal/astopo"
	"fenrir/internal/dataplane"
	"fenrir/internal/netaddr"
	"fenrir/internal/wire"
)

// Wrap interposes the injector between a measurement engine and the
// forwarding plane: probes and DNS queries pass through the fault model on
// their way in and out. substrate labels the statistics. A nil injector
// returns p itself — no wrapper object, no behavioural change, preserving
// zero-fault byte identity by construction.
func (inj *Injector) Wrap(p dataplane.Plane, substrate string) dataplane.Plane {
	if inj == nil {
		return p
	}
	return &faultyPlane{Plane: p, inj: inj, substrate: substrate}
}

// faultyPlane wraps a Plane, intercepting the three wire methods. All
// read-only topology methods pass through via embedding.
type faultyPlane struct {
	dataplane.Plane
	inj       *Injector
	substrate string
}

func (f *faultyPlane) Ping(src astopo.ASN, srcAddr, dst netaddr.Addr, id, seq uint16, epoch int) dataplane.ProbeResult {
	if f.inj.Blackout(f.substrate, uint64(srcAddr), epoch) {
		return dataplane.ProbeResult{Kind: dataplane.Timeout}
	}
	f.inj.mu.Lock()
	lost := f.inj.lose(f.substrate)
	f.inj.mu.Unlock()
	if lost {
		return dataplane.ProbeResult{Kind: dataplane.Timeout}
	}
	res := f.Plane.Ping(src, srcAddr, dst, id, seq, epoch)
	return f.mangleProbe(res, true)
}

func (f *faultyPlane) ProbeTTL(src astopo.ASN, srcAddr, dst netaddr.Addr, srcPort uint16, ttl, epoch int) dataplane.ProbeResult {
	if f.inj.Blackout(f.substrate, uint64(srcAddr), epoch) {
		return dataplane.ProbeResult{Kind: dataplane.Timeout}
	}
	f.inj.mu.Lock()
	lost := f.inj.lose(f.substrate)
	f.inj.mu.Unlock()
	if lost {
		return dataplane.ProbeResult{Kind: dataplane.Timeout}
	}
	res := f.Plane.ProbeTTL(src, srcAddr, dst, srcPort, ttl, epoch)
	return f.mangleProbe(res, false)
}

// mangleProbe applies reply-side faults to a successful probe result:
// payload corruption (the flipped bit trips the ICMP checksum, so the
// reply honestly degrades to a timeout), delay spikes, and — for
// site-bearing replies — stuck/bogus site labels.
func (f *faultyPlane) mangleProbe(res dataplane.ProbeResult, siteBearing bool) dataplane.ProbeResult {
	if res.Kind == dataplane.Timeout {
		return res
	}
	inj := f.inj
	if inj.prof.CorruptRate > 0 && res.ICMP != nil {
		inj.mu.Lock()
		fire := inj.rCorrupt.Bool(inj.prof.CorruptRate)
		var raw []byte
		if fire {
			raw = inj.corruptBytes(f.substrate, res.ICMP.Marshal())
		}
		inj.mu.Unlock()
		if fire {
			parsed, err := wire.UnmarshalICMP(raw)
			if err != nil {
				// Checksum no longer verifies: the receiver discards the
				// reply, i.e. the probe times out.
				return dataplane.ProbeResult{Kind: dataplane.Timeout}
			}
			res.ICMP = parsed
		}
	}
	res.RTTms += inj.DelayMs(f.substrate)
	if siteBearing && res.Site != "" {
		res.Site = inj.SiteLabel(f.substrate, res.Site)
	}
	return res
}

func (f *faultyPlane) QueryDNS(client astopo.ASN, server netaddr.Addr, q *wire.DNSMessage, epoch int) (*wire.DNSMessage, float64, error) {
	if f.inj.Blackout(f.substrate, uint64(client), epoch) {
		return nil, 0, &Error{Substrate: f.substrate, Kind: "blackout"}
	}
	f.inj.mu.Lock()
	lost := f.inj.lose(f.substrate)
	f.inj.mu.Unlock()
	if lost {
		return nil, 0, &Error{Substrate: f.substrate, Kind: "loss"}
	}
	resp, rtt, err := f.Plane.QueryDNS(client, server, q, epoch)
	if err != nil {
		return resp, rtt, err
	}
	resp, err = f.mangleDNS(resp)
	if err != nil {
		return nil, 0, err
	}
	return resp, rtt + f.inj.DelayMs(f.substrate), nil
}

// mangleDNS applies reply-side faults to a DNS response. Corruption works
// at the byte level — DNS has no end-to-end checksum, so a flipped bit may
// still parse and deliver garbled data (the interesting case for the
// cleaning stage) or fail to parse (an injected error). Site-label faults
// rewrite the identifiers engines actually decode: the NSID option, TXT
// strings, and — for answer-address mapping à la EDNS-CS — the first A
// record.
func (f *faultyPlane) mangleDNS(m *wire.DNSMessage) (*wire.DNSMessage, error) {
	inj := f.inj
	if inj.prof.CorruptRate > 0 {
		inj.mu.Lock()
		fire := inj.rCorrupt.Bool(inj.prof.CorruptRate)
		inj.mu.Unlock()
		if fire {
			raw, err := m.Marshal()
			if err == nil {
				inj.mu.Lock()
				raw = inj.corruptBytes(f.substrate, raw)
				inj.mu.Unlock()
				garbled, perr := wire.UnmarshalDNS(raw)
				if perr != nil {
					return nil, &Error{Substrate: f.substrate, Kind: "corrupt"}
				}
				m = garbled
			}
		}
	}
	m = f.mangleDNSSite(m)
	return m, nil
}

// mangleDNSSite rewrites the site-bearing identifiers of a response per
// the stuck/bogus faults.
func (f *faultyPlane) mangleDNSSite(m *wire.DNSMessage) *wire.DNSMessage {
	inj := f.inj
	if inj.prof.StuckSiteRate <= 0 && inj.prof.BogusSiteRate <= 0 {
		return m
	}
	// Identifier-carrying responses: NSID and/or TXT.
	ident := ""
	if id, ok := wire.NSIDFromMessage(m); ok && id != "" {
		ident = id
	} else {
		for _, rr := range m.Answers {
			if rr.Type == wire.TypeTXT {
				if ss, err := wire.TXTStrings(rr); err == nil && len(ss) > 0 {
					ident = ss[0]
					break
				}
			}
		}
	}
	if ident != "" {
		faulted := inj.SiteLabel(f.substrate, ident)
		if faulted == ident {
			return m
		}
		out := *m
		out.Answers = append([]wire.RR(nil), m.Answers...)
		out.Additional = append([]wire.RR(nil), m.Additional...)
		for i, rr := range out.Answers {
			if rr.Type == wire.TypeTXT {
				if nrr, err := wire.TXTRecord(rr.Name, rr.Class, rr.TTL, faulted); err == nil {
					out.Answers[i] = nrr
				}
			}
		}
		for i, rr := range out.Additional {
			if rr.Type != wire.TypeOPT {
				continue
			}
			opts, err := wire.EDNSOptions(rr)
			if err != nil {
				continue
			}
			changed := false
			for j, o := range opts {
				if o.Code == wire.OptNSID && len(o.Data) > 0 {
					opts[j] = wire.NSIDOption(faulted)
					changed = true
				}
			}
			if changed {
				nrr := wire.OPTRecord(rr.Class, opts...)
				nrr.TTL = rr.TTL
				out.Additional[i] = nrr
			}
		}
		return &out
	}
	// Address-mapped responses (EDNS-CS): a bogus fault redirects the
	// first A answer into TEST-NET-2, an address no front-end list maps.
	for i, rr := range m.Answers {
		if rr.Type != wire.TypeA || len(rr.Data) != 4 {
			continue
		}
		inj.mu.Lock()
		fire := inj.prof.BogusSiteRate > 0 && inj.rSite.Bool(inj.prof.BogusSiteRate)
		var host int
		if fire {
			host = inj.rSite.Intn(256)
			inj.count(f.substrate, "bogus-site")
		}
		inj.mu.Unlock()
		if fire {
			out := *m
			out.Answers = append([]wire.RR(nil), m.Answers...)
			data := make([]byte, 4)
			binary.BigEndian.PutUint32(data, 198<<24|51<<16|100<<8|uint32(host))
			nrr := rr
			nrr.Data = data
			out.Answers[i] = nrr
			return &out
		}
		break
	}
	return m
}

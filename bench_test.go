package fenrir

// Benchmark harness: one testing.B per table and figure of the paper,
// each regenerating its artefact end-to-end (topology, BGP solve,
// measurement sweeps, and the Fenrir analysis), plus ablation benches for
// the design choices called out in DESIGN.md §5 and N-scaling sweeps for
// the pipeline's dominant cost. Run:
//
//	go test -bench=. -benchmem
//
// The figure/table benches use reduced scales so a full -bench=. pass
// stays in CI territory; cmd/experiments is the place for full runs.

import (
	"fmt"
	"testing"
	"time"

	"fenrir/internal/core"
	"fenrir/internal/rng"
	"fenrir/internal/timeline"
)

// --- Table and figure benchmarks -----------------------------------------

func benchBRootConfig(seed uint64) BRootConfig {
	cfg := DefaultBRootConfig(seed)
	cfg.EpochDays = 21
	cfg.StubsPerRegion = 8
	cfg.HitlistStride = 4
	cfg.LatencyEvery = 8
	cfg.AtlasVPs = 40
	return cfg
}

// BenchmarkTable2Datasets builds every scenario world once — the cost of
// standing up the five datasets of Table 2.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunGRoot(benchGRootConfig(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := RunBRoot(benchBRootConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGRootConfig(seed uint64) GRootConfig {
	cfg := DefaultGRootConfig(seed)
	cfg.EpochMinutes = 60
	cfg.Days = 6
	cfg.VPs = 80
	cfg.StubsPerRegion = 8
	return cfg
}

// BenchmarkFig1GRootCatchments regenerates Figure 1's catchment series.
func BenchmarkFig1GRootCatchments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunGRoot(benchGRootConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		if res.Series.Len() == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkTable3TransitionMatrices regenerates the drain transitions.
func BenchmarkTable3TransitionMatrices(b *testing.B) {
	res, err := RunGRoot(benchGRootConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	d := res.Events["drain-1"]
	va, vb := res.Series.At(d-1), res.Series.At(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Transition(va, vb, nil)
	}
}

// BenchmarkTable4Validation regenerates the ground-truth study.
func BenchmarkTable4Validation(b *testing.B) {
	cfg := DefaultValidationConfig(3)
	cfg.Epochs = 700
	cfg.VPs = 60
	cfg.StubsPerRegion = 8
	for i := 0; i < b.N; i++ {
		res, err := RunValidation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Validation.TP == 0 {
			b.Fatal("no true positives")
		}
	}
}

// BenchmarkFig2Enterprise regenerates the USC hop-3 study.
func BenchmarkFig2Enterprise(b *testing.B) {
	cfg := DefaultUSCConfig(4)
	cfg.EpochDays = 21
	cfg.StubsPerRegion = 8
	cfg.HitlistStride = 4
	for i := 0; i < b.N; i++ {
		if _, err := RunUSC(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3BRootModes regenerates the five-year mode discovery.
func BenchmarkFig3BRootModes(b *testing.B) {
	cfg := benchBRootConfig(5)
	cfg.LatencyEvery = 0
	for i := 0; i < b.N; i++ {
		res, err := RunBRoot(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Modes.Modes) == 0 {
			b.Fatal("no modes")
		}
	}
}

// BenchmarkFig4Latency regenerates the per-site latency series.
func BenchmarkFig4Latency(b *testing.B) {
	cfg := benchBRootConfig(5)
	cfg.LatencyEvery = 4
	for i := 0; i < b.N; i++ {
		res, err := RunBRoot(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Latency.Sites) == 0 {
			b.Fatal("no latency series")
		}
	}
}

// BenchmarkFig5Google regenerates the Google heatmap.
func BenchmarkFig5Google(b *testing.B) {
	cfg := DefaultGoogleConfig(6)
	cfg.Days2024 = 14
	cfg.Prefixes = 300
	cfg.FleetSize = 100
	cfg.StubsPerRegion = 8
	for i := 0; i < b.N; i++ {
		if _, err := RunGoogle(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Wikipedia regenerates the Wikipedia study.
func BenchmarkFig6Wikipedia(b *testing.B) {
	cfg := DefaultWikipediaConfig(7)
	cfg.Days = 21
	cfg.Prefixes = 300
	cfg.StubsPerRegion = 8
	for i := 0; i < b.N; i++ {
		if _, err := RunWikipedia(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig78Sankey regenerates the before/after flow topologies.
func BenchmarkFig78Sankey(b *testing.B) {
	cfg := DefaultUSCConfig(8)
	cfg.EpochDays = 28
	cfg.StubsPerRegion = 8
	cfg.HitlistStride = 4
	for i := 0; i < b.N; i++ {
		res, err := RunUSC(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FlowsBefore) == 0 || len(res.FlowsAfter) == 0 {
			b.Fatal("missing flows")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ----------------------------------

// syntheticSeries builds a series with nEpochs vectors over nNets networks
// with the given unknown fraction, for pipeline micro-benches.
func syntheticSeries(nEpochs, nNets int, unknownFrac float64, seed uint64) *Series {
	r := rng.New(seed)
	ids := make([]string, nNets)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%05d", i)
	}
	space := NewSpace(ids)
	sites := []string{"A", "B", "C", "D", "E"}
	var vs []*Vector
	for e := 0; e < nEpochs; e++ {
		v := space.NewVector(timeline.Epoch(e))
		base := sites[(e/10)%len(sites)] // mode shifts every 10 epochs
		for i := 0; i < nNets; i++ {
			if r.Bool(unknownFrac) {
				continue
			}
			if r.Bool(0.1) {
				v.Set(i, sites[r.Intn(len(sites))])
			} else {
				v.Set(i, base)
			}
		}
		vs = append(vs, v)
	}
	sched := NewSchedule(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, nEpochs)
	return NewSeries(space, sched, vs)
}

// BenchmarkAblationUnknownHandling compares the two Φ definitions.
func BenchmarkAblationUnknownHandling(b *testing.B) {
	s := syntheticSeries(2, 5000, 0.45, 1)
	a, v := s.Vectors[0], s.Vectors[1]
	for _, mode := range []UnknownMode{PessimisticUnknown, KnownOnly} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Gower(a, v, nil, mode)
			}
		})
	}
}

// BenchmarkAblationLinkage compares HAC linkages on a mode-structured
// matrix.
func BenchmarkAblationLinkage(b *testing.B) {
	s := syntheticSeries(120, 400, 0.2, 2)
	m := core.SimilarityMatrix(s, nil, core.PessimisticUnknown)
	for _, l := range []core.Linkage{core.SingleLinkage, core.AverageLinkage, core.CompleteLinkage} {
		b.Run(l.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.HAC(m, l)
			}
		})
	}
}

// BenchmarkAblationInterpolation sweeps the reach limit.
func BenchmarkAblationInterpolation(b *testing.B) {
	s := syntheticSeries(60, 1000, 0.3, 3)
	an := DefaultAnalysisOptions()
	for _, reach := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("reach-%d", reach), func(b *testing.B) {
			opts := an
			opts.InterpolateReach = reach
			for i := 0; i < b.N; i++ {
				Analyze(s, opts)
			}
		})
	}
}

// BenchmarkAblationWeighting compares uniform against count weights.
func BenchmarkAblationWeighting(b *testing.B) {
	s := syntheticSeries(2, 5000, 0.1, 4)
	a, v := s.Vectors[0], s.Vectors[1]
	counts := map[string]float64{"n00001": 256, "n00002": 64}
	w := CountWeights(s.Space, counts, 1)
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Gower(a, v, nil, core.PessimisticUnknown)
		}
	})
	b.Run("count-weighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Gower(a, v, w, core.PessimisticUnknown)
		}
	})
}

// BenchmarkAblationThreshold sweeps the adaptive-threshold step size.
func BenchmarkAblationThreshold(b *testing.B) {
	s := syntheticSeries(120, 400, 0.2, 5)
	m := core.SimilarityMatrix(s, nil, core.PessimisticUnknown)
	for _, step := range []float64{0.005, 0.01, 0.05} {
		b.Run(fmt.Sprintf("step-%.3f", step), func(b *testing.B) {
			opts := core.DefaultAdaptiveOptions()
			opts.Step = step
			for i := 0; i < b.N; i++ {
				core.ClusterAdaptive(m, opts)
			}
		})
	}
}

// --- Scaling sweeps -------------------------------------------------------

// BenchmarkSimilarityMatrixScaling shows the quadratic-epochs × linear-
// networks cost of the pipeline's dominant stage.
func BenchmarkSimilarityMatrixScaling(b *testing.B) {
	for _, nets := range []int{500, 2000, 8000} {
		s := syntheticSeries(60, nets, 0.3, 6)
		b.Run(fmt.Sprintf("epochs-60-nets-%d", nets), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SimilarityMatrix(s, nil, core.PessimisticUnknown)
			}
		})
	}
	for _, epochs := range []int{30, 120, 360} {
		s := syntheticSeries(epochs, 1000, 0.3, 7)
		b.Run(fmt.Sprintf("epochs-%d-nets-1000", epochs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SimilarityMatrix(s, nil, core.PessimisticUnknown)
			}
		})
	}
}

// BenchmarkSimilarityMatrix sweeps the similarity engines across series
// lengths: K=scalar is the pre-bitset reference (kept in the suite so
// every BENCH_core.json carries the before/after pair side by side),
// K=bitset is the packed popcount engine, and P compares the serial
// path against the auto-sized worker pool with balanced-triangle tiles.
// Every (K, P) combination produces the bit-identical matrix; the
// scalar-vs-bitset ratio at T=1024/P=1 is the headline speedup, and
// scripts/benchguard.sh gates regressions on the bitset serial number.
func BenchmarkSimilarityMatrix(b *testing.B) {
	for _, T := range []int{64, 256, 1024} {
		s := syntheticSeries(T, 256, 0.3, 9)
		for _, k := range []core.SimKernel{core.KernelScalar, core.KernelBitset} {
			for _, p := range []int{1, 0} {
				label := "auto"
				if p == 1 {
					label = "1"
				}
				b.Run(fmt.Sprintf("T=%d/K=%s/P=%s", T, k, label), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.SimilarityMatrixParallel(s, nil, core.PessimisticUnknown,
							core.MatrixOptions{Kernel: k, Parallelism: p})
					}
				})
			}
		}
	}
}

// BenchmarkMonitorAppendHot measures the streaming ingest path at depth:
// one append against a 1024-observation history, the packed O(T·N/64)
// incremental Φ row plus the single-step change detector.
func BenchmarkMonitorAppendHot(b *testing.B) {
	const T, nets = 1024, 256
	s := syntheticSeries(T, nets, 0.3, 12)
	mon := core.NewMonitor(s.Space, NewSchedule(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, 1<<30),
		nil, core.PessimisticUnknown, core.DefaultDetectOptions())
	for _, v := range s.Vectors {
		if _, _, err := mon.Append(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := s.Space.NewVector(timeline.Epoch(T + i))
		for n := 0; n < nets; n++ {
			v.Set(n, "A")
		}
		if _, _, err := mon.Append(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterAdaptiveIncremental measures the single-pass
// threshold sweep (sorted merges + one persistent union-find) that
// replaced the 101× from-scratch Cut rebuild inside ClusterAdaptive.
func BenchmarkClusterAdaptiveIncremental(b *testing.B) {
	s := syntheticSeries(240, 400, 0.2, 10)
	m := core.SimilarityMatrix(s, nil, core.PessimisticUnknown)
	opts := core.DefaultAdaptiveOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ClusterAdaptive(m, opts)
	}
}

// BenchmarkAnalyzePipeline measures the full facade pipeline end-to-end.
func BenchmarkAnalyzePipeline(b *testing.B) {
	s := syntheticSeries(120, 2000, 0.3, 8)
	opts := DefaultAnalysisOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(s, opts)
	}
}

package fenrir

import (
	"fenrir/internal/dataset"
	"fenrir/internal/scenario"
)

// The scenario runners reproduce the paper's five studies end-to-end on
// the simulated Internet; cmd/experiments drives them to regenerate every
// table and figure. They are re-exported here so downstream users can
// embed the studies (e.g. as regression benchmarks for their own
// deployments of the analysis pipeline).
type (
	// BRootConfig/BRootResult reproduce Figures 3 and 4 (five years of
	// anycast catchments and per-site latency).
	BRootConfig = scenario.BRootConfig
	BRootResult = scenario.BRootResult
	// GRootConfig/GRootResult reproduce Figure 1 and Table 3.
	GRootConfig = scenario.GRootConfig
	GRootResult = scenario.GRootResult
	// USCConfig/USCResult reproduce Figure 2 and the appendix Sankeys.
	USCConfig = scenario.USCConfig
	USCResult = scenario.USCResult
	// GoogleConfig/GoogleResult reproduce Figure 5.
	GoogleConfig = scenario.GoogleConfig
	GoogleResult = scenario.GoogleResult
	// WikipediaConfig/WikipediaResult reproduce Figure 6.
	WikipediaConfig = scenario.WikipediaConfig
	WikipediaResult = scenario.WikipediaResult
	// ValidationConfig/ValidationResult reproduce Table 4.
	ValidationConfig = scenario.ValidationConfig
	ValidationResult = scenario.ValidationResult
)

// Scenario runners and their default configurations.
var (
	RunBRoot                = scenario.RunBRoot
	DefaultBRootConfig      = scenario.DefaultBRootConfig
	RunGRoot                = scenario.RunGRoot
	DefaultGRootConfig      = scenario.DefaultGRootConfig
	RunUSC                  = scenario.RunUSC
	DefaultUSCConfig        = scenario.DefaultUSCConfig
	RunGoogle               = scenario.RunGoogle
	DefaultGoogleConfig     = scenario.DefaultGoogleConfig
	RunWikipedia            = scenario.RunWikipedia
	DefaultWikipediaConfig  = scenario.DefaultWikipediaConfig
	RunValidation           = scenario.RunValidation
	DefaultValidationConfig = scenario.DefaultValidationConfig
)

// SaveSeries writes a series to w in the portable CSV dataset format
// (see internal/dataset); LoadSeries reads it back. This is how scenario
// datasets are released for analysis outside the simulator.
var (
	SaveSeries = dataset.Save
	LoadSeries = dataset.Load
)

#!/bin/sh
# shard_smoke.sh — end-to-end smoke test of the sharded tenant tier.
# A 4-shard daemon hosts six tenants spread across shards; one tenant is
# rebalanced onto another shard mid-stream (via POST /v1/admin/rebalance,
# asserting the snapshot file physically moves between shard
# subdirectories), then the daemon is hard-killed and restarted from the
# same -snapshot-dir. Every tenant — moved or not — must answer all five
# deterministic query endpoints byte-identically to an uninterrupted
# 4-shard daemon that ingested the same streams and never rebalanced,
# moved tenants must come back on the shard holding their snapshot, and
# rebalance error paths (unknown tenant, bad shard index) must reject
# cleanly. Used by `make shard-smoke` / `make check`.
set -e
cd "$(dirname "$0")/.."

SHARDS=4
TENANTS="alpha bravo charlie delta echo foxtrot"
EPOCHS=36
KILL_AT=27

work="$(mktemp -d /tmp/fenrir-shard-smoke.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

bin="$work/fenrir"
go build -o "$bin" ./cmd/fenrir

wait_api() {
    i=0
    while [ $i -lt 200 ]; do
        url=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$1" | head -1)
        if [ -n "$url" ]; then
            echo "$url"
            return 0
        fi
        sleep 0.05
        i=$((i + 1))
    done
    echo "shard-smoke: daemon never announced its address" >&2
    cat "$1" >&2
    return 1
}

# obs_json EPOCH — 12 networks, era flip at epoch 18, every 7th network
# pinned to gamma, one rotating unknown.
obs_json() {
    e=$1
    if [ "$e" -lt 18 ]; then base=alpha; else base=beta; fi
    printf '{"epoch":%d,"sites":{' "$e"
    sep=""
    i=0
    while [ $i -lt 12 ]; do
        if [ $(((i + e) % 11)) -ne 0 ]; then
            if [ $((i % 7)) -eq 0 ]; then site=gamma; else site=$base; fi
            printf '%s"n%02d":"%s"' "$sep" "$i" "$site"
            sep=","
        fi
        i=$((i + 1))
    done
    printf '}}'
}

spec_json() {
    printf '{"networks":['
    sep=""
    i=0
    while [ $i -lt 12 ]; do
        printf '%s"n%02d"' "$sep" "$i"
        sep=","
        i=$((i + 1))
    done
    printf '],"start":"2026-01-01T00:00:00Z","interval_seconds":240,"epochs":4096}'
}

# req METHOD URL BODY EXPECTED_CODE LABEL
req() {
    code=$(curl -s -o "$work/last-response" -w '%{http_code}' -X "$1" -d "$3" "$2")
    if [ "$code" != "$4" ]; then
        echo "shard-smoke: $5: got HTTP $code, want $4" >&2
        cat "$work/last-response" >&2
        exit 1
    fi
}

# ingest URL FROM TO — streams epochs [FROM, TO) into every tenant.
ingest() {
    e=$2
    while [ "$e" -lt "$3" ]; do
        body=$(obs_json "$e")
        for t in $TENANTS; do
            req POST "$1/v1/tenants/$t/observations" "$body" 202 "ingest $t epoch $e"
        done
        e=$((e + 1))
    done
}

# capture URL OUTDIR — snapshots the deterministic query surface of
# every tenant.
capture() {
    for t in $TENANTS; do
        mkdir -p "$2/$t"
        curl -s "$1/v1/tenants/$t/mode" >"$2/$t/mode.json"
        curl -s "$1/v1/tenants/$t/events?n=50" >"$2/$t/events.json"
        curl -s "$1/v1/tenants/$t/heatmap" >"$2/$t/heatmap.json"
        curl -s "$1/v1/tenants/$t/transitions" >"$2/$t/transitions.json"
        curl -s "$1/v1/tenants/$t/flows?k=5" >"$2/$t/flows.json"
    done
}

# tenant_shard URL TENANT — reads the shard id off the pretty-printed
# tenant status JSON.
tenant_shard() {
    curl -s "$1/v1/tenants/$2" | sed -n 's/.*"shard": \([0-9]*\).*/\1/p' | head -1
}

# --- Control: 4 shards, all epochs, no rebalance, no interruption. ----
"$bin" -serve 127.0.0.1:0 -shards $SHARDS -snapshot-dir "$work/control-state" \
    2>"$work/control.log" &
control_pid=$!
pids="$pids $control_pid"
control_url=$(wait_api "$work/control.log")
for t in $TENANTS; do
    req PUT "$control_url/v1/tenants/$t" "$(spec_json)" 201 "control create $t"
done
ingest "$control_url" 0 $EPOCHS
for t in $TENANTS; do
    req POST "$control_url/v1/tenants/$t/checkpoint" "" 200 "control checkpoint $t"
done
capture "$control_url" "$work/control-out"
kill -TERM "$control_pid"
wait "$control_pid" 2>/dev/null || true

# --- Victim: rebalance one tenant mid-stream, then die hard. ----------
state="$work/victim-state"
"$bin" -serve 127.0.0.1:0 -shards $SHARDS -snapshot-dir "$state" \
    -snapshot-every 5 2>"$work/victim.log" &
victim_pid=$!
pids="$pids $victim_pid"
victim_url=$(wait_api "$work/victim.log")
for t in $TENANTS; do
    req PUT "$victim_url/v1/tenants/$t" "$(spec_json)" 201 "victim create $t"
done

# The six names must actually spread: at least two shards are occupied.
occupied=$(curl -s "$victim_url/status" |
    sed -n 's/.*"tenants": \([1-9][0-9]*\).*/\1/p' | wc -l)
if [ "$occupied" -lt 2 ]; then
    echo "shard-smoke: tenants did not spread across shards" >&2
    curl -s "$victim_url/status" >&2
    exit 1
fi

ingest "$victim_url" 0 18

# Rebalance "charlie" onto the next shard over, mid-stream.
mover=charlie
src=$(tenant_shard "$victim_url" $mover)
dst=$(((src + 1) % SHARDS))
req POST "$victim_url/v1/admin/rebalance" \
    "{\"tenant\":\"$mover\",\"shard\":$dst}" 200 "rebalance $mover"
now=$(tenant_shard "$victim_url" $mover)
if [ "$now" != "$dst" ]; then
    echo "shard-smoke: $mover reports shard $now after rebalance to $dst" >&2
    exit 1
fi
if [ ! -f "$state/shard-$dst/$mover.fsnap" ]; then
    echo "shard-smoke: no snapshot in target shard dir shard-$dst" >&2
    ls -R "$state" >&2
    exit 1
fi
if [ -f "$state/shard-$src/$mover.fsnap" ]; then
    echo "shard-smoke: snapshot still present in source shard dir shard-$src" >&2
    exit 1
fi

# Rebalance error paths reject cleanly.
req POST "$victim_url/v1/admin/rebalance" \
    '{"tenant":"nope","shard":0}' 404 "rebalance unknown tenant"
req POST "$victim_url/v1/admin/rebalance" \
    "{\"tenant\":\"$mover\",\"shard\":99}" 400 "rebalance bad shard"

# The moved tenant keeps ingesting where it left off; then everyone
# checkpoints and the daemon dies without warning.
ingest "$victim_url" 18 $KILL_AT
for t in $TENANTS; do
    req POST "$victim_url/v1/tenants/$t/checkpoint" "" 200 "victim checkpoint $t"
done
kill -KILL "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

# --- Restart: same flags, same state dir. -----------------------------
manifest="$work/shard-manifest.json"
"$bin" -serve 127.0.0.1:0 -shards $SHARDS -snapshot-dir "$state" \
    -snapshot-every 5 -manifest "$manifest" 2>"$work/restart.log" &
restart_pid=$!
pids="$pids $restart_pid"
restart_url=$(wait_api "$work/restart.log")

# The rebalanced tenant comes back on the shard holding its snapshot.
back=$(tenant_shard "$restart_url" $mover)
if [ "$back" != "$dst" ]; then
    echo "shard-smoke: $mover restarted on shard $back, want rebalanced shard $dst" >&2
    exit 1
fi
# A replayed epoch still bounces after restore.
req POST "$restart_url/v1/tenants/$mover/observations" "$(obs_json 20)" \
    400 "replayed epoch after restart"

ingest "$restart_url" $KILL_AT $EPOCHS
for t in $TENANTS; do
    req POST "$restart_url/v1/tenants/$t/checkpoint" "" 200 "restart checkpoint $t"
done
capture "$restart_url" "$work/restart-out"
kill -TERM "$restart_pid"
wait "$restart_pid" 2>/dev/null || true

# --- The guarantee: rebalance + kill -9 + restart changes nothing. ----
for t in $TENANTS; do
    for f in mode events heatmap transitions flows; do
        if ! cmp -s "$work/control-out/$t/$f.json" "$work/restart-out/$t/$f.json"; then
            echo "shard-smoke: $t/$f.json differs between control and rebalanced+restored runs" >&2
            diff "$work/control-out/$t/$f.json" "$work/restart-out/$t/$f.json" >&2 || true
            exit 1
        fi
    done
done

# The restarted daemon's manifest must carry serve metrics and the
# telemetry-history alerts block (self-observation is on by default).
go run ./scripts/manifestcheck -serve -alerts "$manifest"
echo "shard-smoke: ok — rebalance + kill -9 + restart is byte-identical across 5 endpoints x 6 tenants on $SHARDS shards"

#!/bin/sh
# history_smoke.sh — end-to-end smoke test of the daemon's
# self-observation surface (DESIGN.md §16). Runs a daemon with fast
# history sampling and a seeded tight burn-rate SLO rule, then proves
# the full loop over the public API: malformed ingest trips the rule
# (visible at /v1/alerts), clean traffic resolves it, /v1/query serves
# windowed functions over at least two samples, /debug/timeline carries
# the sampled series, and the shutdown manifest carries the alerts
# block (manifestcheck -alerts). Used by `make history-smoke` /
# `make check`.
set -e
cd "$(dirname "$0")/.."

work="$(mktemp -d /tmp/fenrir-history-smoke.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

bin="$work/fenrir"
go build -o "$bin" ./cmd/fenrir

# The seeded rule is deliberately twitchy: a 2s fast window over a 90%
# objective, so a burst of rejects fires it within a few sampler ticks
# and a couple of seconds of clean traffic resolves it. The default
# production rules (5m/30m windows) ride along untouched.
rules="$work/rules.json"
cat >"$rules" <<'EOF'
[
  {
    "name": "smoke-slo",
    "type": "burn_rate",
    "error_metric": "fenrir_serve_ingest_rejected_total",
    "total_metric": "fenrir_serve_ingest_requests_total",
    "objective": 0.9,
    "factor": 2,
    "fast_range": "2s",
    "slow_range": "6s"
  }
]
EOF

wait_api() {
    i=0
    while [ $i -lt 200 ]; do
        url=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$1" | head -1)
        if [ -n "$url" ]; then
            echo "$url"
            return 0
        fi
        sleep 0.05
        i=$((i + 1))
    done
    echo "history-smoke: daemon never announced its address" >&2
    cat "$1" >&2
    return 1
}

spec_json() {
    printf '{"networks":["n0","n1","n2","n3","n4","n5"],"start":"2026-01-01T00:00:00Z","interval_seconds":240,"epochs":4096}'
}

obs_json() {
    printf '{"epoch":%d,"sites":{"n0":"alpha","n1":"alpha","n2":"alpha","n3":"beta","n4":"beta","n5":"alpha"}}' "$1"
}

# req METHOD URL BODY EXPECTED_CODE LABEL
req() {
    code=$(curl -s -o "$work/last-response" -w '%{http_code}' -X "$1" -d "$3" "$2")
    if [ "$code" != "$4" ]; then
        echo "history-smoke: $5: got HTTP $code, want $4" >&2
        cat "$work/last-response" >&2
        exit 1
    fi
}

# rule_firing — true when the seeded rule reports firing at /v1/alerts.
# AlertStatus serializes name, type, firing in that order, so the
# rule's own firing flag is within two lines of its name.
rule_firing() {
    curl -s "$url/v1/alerts" | grep -A2 '"smoke-slo"' | grep -q '"firing": true'
}

manifest="$work/manifest.json"
"$bin" -serve 127.0.0.1:0 -snapshot-dir "$work/state" \
    -history-every 150ms -history-retain 256 -alert-rules "$rules" \
    -manifest "$manifest" 2>"$work/daemon.log" &
pid=$!
pids="$pids $pid"
url=$(wait_api "$work/daemon.log")

req PUT "$url/v1/tenants/smoke" "$(spec_json)" 201 "create tenant"

# Healthy baseline: a little clean traffic while the sampler ticks.
e=0
while [ $e -lt 5 ]; do
    req POST "$url/v1/tenants/smoke/observations" "$(obs_json $e)" 202 "baseline epoch $e"
    e=$((e + 1))
done
sleep 0.4
if rule_firing; then
    echo "history-smoke: smoke-slo firing on a healthy daemon" >&2
    curl -s "$url/v1/alerts" >&2
    exit 1
fi

# --- Incident: a burst of malformed posts pushes the reject ratio to
# ~100%; the burn-rate rule must fire within a few sampler ticks. ------
i=0
while [ $i -lt 30 ]; do
    req POST "$url/v1/tenants/smoke/observations" '{not json' 400 "malformed post $i"
    i=$((i + 1))
done
fired=no
i=0
while [ $i -lt 40 ]; do
    if rule_firing; then
        fired=yes
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ "$fired" != "yes" ]; then
    echo "history-smoke: smoke-slo never fired after 30 malformed posts" >&2
    curl -s "$url/v1/alerts" >&2
    exit 1
fi

# --- Recovery: clean traffic until the fast window forgets the spike
# and the rule resolves. -----------------------------------------------
resolved=no
i=0
while [ $i -lt 60 ]; do
    req POST "$url/v1/tenants/smoke/observations" "$(obs_json $e)" 202 "recovery epoch $e"
    e=$((e + 1))
    if ! rule_firing; then
        resolved=yes
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ "$resolved" != "yes" ]; then
    echo "history-smoke: smoke-slo never resolved under clean traffic" >&2
    curl -s "$url/v1/alerts" >&2
    exit 1
fi

# --- The query surface: windowed functions over the sampled rings. ----
curl -s "$url/v1/query?metric=fenrir_serve_ingest_total&fn=delta" >"$work/query.json"
samples=$(sed -n 's/.*"samples": \([0-9]*\).*/\1/p' "$work/query.json" | head -1)
if [ -z "$samples" ] || [ "$samples" -lt 2 ]; then
    echo "history-smoke: /v1/query returned ${samples:-no} samples, want >= 2" >&2
    cat "$work/query.json" >&2
    exit 1
fi
req GET "$url/v1/query?metric=fenrir_serve_ingest_total&fn=rate&range=5s" "" 200 "rate query"
if ! curl -s "$url/debug/timeline" | grep -q '"fenrir_serve_ingest_requests_total"'; then
    echo "history-smoke: /debug/timeline is missing the request counter series" >&2
    exit 1
fi

# --- Shutdown: the manifest must carry the alerts block. --------------
req POST "$url/v1/tenants/smoke/checkpoint" "" 200 "checkpoint"
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true

go run ./scripts/manifestcheck -serve -alerts "$manifest"
echo "history-smoke: ok — burn-rate alert fired and resolved; /v1/query served $samples samples"

// Command serveload drives a running fenrir daemon with a sustained
// multi-tenant ingest load and reports throughput and client-observed
// admission latency as bench2json.sh-shaped JSON rows, one per line.
//
// Each of -writers workers owns a disjoint slice of the -tenants fleet
// and walks it epoch by epoch, so every tenant sees a strictly ordered
// stream while the daemon as a whole absorbs W concurrent producers
// spread across its shards. 429 backpressure retries the same epoch
// after a short pause; any other non-202 status fails the run. After
// the write phase the tool polls /status until every accepted
// observation is appended, then asserts none were lost.
//
//	serveload -url http://127.0.0.1:8080 -tenants 1024 -epochs 16 \
//	    -writers 8 -label S=4
//
// -prefix renames the row stem (default "sharded"), letting the same
// load shape record differently-purposed rows — the history-overhead
// A/B uses -prefix history-overhead.
//
// Used by scripts/serve_load.sh to record multi-shard and
// history-overhead rows into BENCH_serve.json.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	url := flag.String("url", "", "daemon base URL (required)")
	tenants := flag.Int("tenants", 1024, "number of tenants to create and feed")
	epochs := flag.Int("epochs", 16, "observations per tenant")
	writers := flag.Int("writers", 8, "concurrent producer workers")
	networks := flag.Int("networks", 16, "networks per tenant universe")
	label := flag.String("label", "", "row label suffix, e.g. S=4")
	prefix := flag.String("prefix", "sharded", "row name stem, e.g. history-overhead")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "serveload: -url is required")
		os.Exit(2)
	}
	if err := run(*url, *tenants, *epochs, *writers, *networks, *label, *prefix); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

func run(base string, tenants, epochs, writers, networks int, label, prefix string) error {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        writers * 2,
		MaxIdleConnsPerHost: writers * 2,
	}}

	nets := make([]string, networks)
	for i := range nets {
		nets[i] = fmt.Sprintf("n%03d", i)
	}
	spec := fmt.Sprintf(`{"networks":[%s],"start":"2026-01-01T00:00:00Z","interval_seconds":240,"epochs":%d}`,
		`"`+strings.Join(nets, `","`)+`"`, epochs+16)

	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("load-%05d", i)
	}

	// Create the fleet with the same worker pool that will feed it.
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < tenants; i += writers {
				code, body, err := doJSON(client, http.MethodPut, base+"/v1/tenants/"+names[i], []byte(spec))
				if err != nil {
					errs[w] = err
					return
				}
				if code != http.StatusCreated {
					errs[w] = fmt.Errorf("create %s: HTTP %d: %s", names[i], code, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Write phase: every worker walks its tenant slice epoch-major, so
	// per-tenant order is strict while the daemon sees `writers`
	// concurrent producers.
	lats := make([][]time.Duration, writers)
	accepted := make([]int, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				body := observation(nets, e)
				for i := w; i < tenants; i += writers {
					url := base + "/v1/tenants/" + names[i] + "/observations"
					for {
						t0 := time.Now()
						code, msg, err := doJSON(client, http.MethodPost, url, body)
						if err != nil {
							errs[w] = err
							return
						}
						if code == http.StatusAccepted {
							lats[w] = append(lats[w], time.Since(t0))
							accepted[w]++
							break
						}
						if code == http.StatusTooManyRequests {
							time.Sleep(2 * time.Millisecond)
							continue
						}
						errs[w] = fmt.Errorf("%s epoch %d: HTTP %d: %s", names[i], e, code, msg)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Settle: admission is synchronous but the append is not; wait for
	// the fleet-wide append counter to cover every accepted observation.
	want := uint64(0)
	for _, n := range accepted {
		want += uint64(n)
	}
	if err := waitAppends(client, base, want); err != nil {
		return err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		return all[int(p*float64(len(all)-1))]
	}
	suffix := fmt.Sprintf("/T=%d", tenants)
	if label != "" {
		suffix = "/" + label + suffix
	}
	emit := func(name string, iters int, nsPerOp float64) {
		fmt.Printf("{\"name\": \"ServeLoad/%s%s\", \"iterations\": %d, \"ns_per_op\": %.0f}\n",
			name, suffix, iters, nsPerOp)
	}
	emit(prefix+"-ingest-throughput", len(all), float64(wall.Nanoseconds())/float64(len(all)))
	emit(prefix+"-admission-p50", len(all), float64(q(0.50).Nanoseconds()))
	emit(prefix+"-admission-p90", len(all), float64(q(0.90).Nanoseconds()))
	emit(prefix+"-admission-p99", len(all), float64(q(0.99).Nanoseconds()))
	fmt.Fprintf(os.Stderr, "serveload: %d tenants x %d epochs via %d writers in %.2fs (%.0f obs/s)\n",
		tenants, epochs, writers, wall.Seconds(), float64(len(all))/wall.Seconds())
	return nil
}

func observation(nets []string, e int) []byte {
	base := "alpha"
	if (e/8)%2 == 1 {
		base = "beta"
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"epoch":%d,"sites":{`, e)
	sep := ""
	for i, n := range nets {
		if (i+e)%11 == 0 { // rotating hole so unknowns exist
			continue
		}
		site := base
		if i%7 == 0 {
			site = "gamma"
		}
		fmt.Fprintf(&b, `%s"%s":"%s"`, sep, n, site)
		sep = ","
	}
	b.WriteString("}}")
	return b.Bytes()
}

func doJSON(client *http.Client, method, url string, body []byte) (int, string, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	return resp.StatusCode, string(bytes.TrimSpace(msg)), nil
}

// waitAppends polls /status until the fleet-wide append count reaches
// want (every accepted observation became queryable) or times out.
func waitAppends(client *http.Client, base string, want uint64) error {
	deadline := time.Now().Add(60 * time.Second)
	var last uint64
	for time.Now().Before(deadline) {
		code, body, err := doJSON(client, http.MethodGet, base+"/status", nil)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("/status: HTTP %d", code)
		}
		if _, err := fmt.Sscanf(after(body, `"appends": `), "%d", &last); err == nil && last >= want {
			if last > want {
				return fmt.Errorf("daemon appended %d observations, clients had %d accepted", last, want)
			}
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon appended %d of %d accepted observations before timeout", last, want)
}

func after(s, sep string) string {
	if i := strings.Index(s, sep); i >= 0 {
		return s[i+len(sep):]
	}
	return ""
}

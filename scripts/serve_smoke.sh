#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving-and-checkpoint
# layer. Proves the daemon's headline guarantee: a daemon that is
# hard-killed mid-stream and restarted from its -snapshot-dir answers
# every deterministic query byte-identically to a daemon that ingested
# the same stream uninterrupted. Also asserts ingest-ordering rejection
# (400 on replay) and validates the daemon manifest (manifestcheck
# -serve). Used by `make serve-smoke` / `make check`.
set -e
cd "$(dirname "$0")/.."

work="$(mktemp -d /tmp/fenrir-serve-smoke.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

bin="$work/fenrir"
go build -o "$bin" ./cmd/fenrir

# wait_api LOGFILE — waits for the daemon to announce its address and
# prints the base URL.
wait_api() {
    i=0
    while [ $i -lt 200 ]; do
        url=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$1" | head -1)
        if [ -n "$url" ]; then
            echo "$url"
            return 0
        fi
        sleep 0.05
        i=$((i + 1))
    done
    echo "serve-smoke: daemon never announced its address" >&2
    cat "$1" >&2
    return 1
}

# obs_json EPOCH — one observation: 12 networks, an era flip at epoch
# 18, every 7th network pinned to gamma, one rotating unknown.
obs_json() {
    e=$1
    if [ "$e" -lt 18 ]; then base=alpha; else base=beta; fi
    printf '{"epoch":%d,"sites":{' "$e"
    sep=""
    i=0
    while [ $i -lt 12 ]; do
        if [ $(((i + e) % 11)) -ne 0 ]; then
            if [ $((i % 7)) -eq 0 ]; then site=gamma; else site=$base; fi
            printf '%s"n%02d":"%s"' "$sep" "$i" "$site"
            sep=","
        fi
        i=$((i + 1))
    done
    printf '}}'
}

spec_json() {
    printf '{"networks":['
    sep=""
    i=0
    while [ $i -lt 12 ]; do
        printf '%s"n%02d"' "$sep" "$i"
        sep=","
        i=$((i + 1))
    done
    printf '],"start":"2026-01-01T00:00:00Z","interval_seconds":240,"epochs":4096}'
}

# req METHOD URL BODY EXPECTED_CODE LABEL
req() {
    code=$(curl -s -o "$work/last-response" -w '%{http_code}' -X "$1" -d "$3" "$2")
    if [ "$code" != "$4" ]; then
        echo "serve-smoke: $5: got HTTP $code, want $4" >&2
        cat "$work/last-response" >&2
        exit 1
    fi
}

# ingest URL TENANT FROM TO — streams epochs [FROM, TO).
ingest() {
    e=$3
    while [ "$e" -lt "$4" ]; do
        req POST "$1/v1/tenants/$2/observations" "$(obs_json "$e")" 202 "ingest epoch $e"
        e=$((e + 1))
    done
}

# capture URL TENANT OUTDIR — snapshots the deterministic query surface.
capture() {
    mkdir -p "$3"
    curl -s "$1/v1/tenants/$2/mode" >"$3/mode.json"
    curl -s "$1/v1/tenants/$2/events?n=50" >"$3/events.json"
    curl -s "$1/v1/tenants/$2/heatmap" >"$3/heatmap.json"
    curl -s "$1/v1/tenants/$2/transitions" >"$3/transitions.json"
    curl -s "$1/v1/tenants/$2/flows?k=5" >"$3/flows.json"
}

# --- Control: one daemon ingests all 36 epochs, never interrupted. ----
"$bin" -serve 127.0.0.1:0 -snapshot-dir "$work/control-state" \
    2>"$work/control.log" &
control_pid=$!
pids="$pids $control_pid"
control_url=$(wait_api "$work/control.log")

req PUT "$control_url/v1/tenants/smoke" "$(spec_json)" 201 "control create tenant"
ingest "$control_url" smoke 0 36
# Checkpoint doubles as a flush barrier: it waits for the worker to
# drain the queue before the state is captured.
req POST "$control_url/v1/tenants/smoke/checkpoint" "" 200 "control checkpoint"
capture "$control_url" smoke "$work/control-out"
kill -TERM "$control_pid"
wait "$control_pid" 2>/dev/null || true

# --- Victim: ingests 21 epochs, checkpoints, then dies hard. ---------
state="$work/victim-state"
manifest="$work/serve-manifest.json"
"$bin" -serve 127.0.0.1:0 -snapshot-dir "$state" -snapshot-every 5 \
    2>"$work/victim.log" &
victim_pid=$!
pids="$pids $victim_pid"
victim_url=$(wait_api "$work/victim.log")

req PUT "$victim_url/v1/tenants/smoke" "$(spec_json)" 201 "victim create tenant"
ingest "$victim_url" smoke 0 21
req POST "$victim_url/v1/tenants/smoke/checkpoint" "" 200 "victim checkpoint"
kill -KILL "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

# --- Restart: warm-restore from the snapshot dir, finish the stream. --
"$bin" -serve 127.0.0.1:0 -snapshot-dir "$state" -snapshot-every 5 \
    -manifest "$manifest" 2>"$work/restart.log" &
restart_pid=$!
pids="$pids $restart_pid"
restart_url=$(wait_api "$work/restart.log")

# The restored tenant must reject a replay of an already-ingested epoch.
req POST "$restart_url/v1/tenants/smoke/observations" "$(obs_json 20)" \
    400 "replayed epoch after restart"
if ! grep -q 'out-of-order\|duplicate' "$work/last-response"; then
    echo "serve-smoke: replay rejection is not an ordering error:" >&2
    cat "$work/last-response" >&2
    exit 1
fi

ingest "$restart_url" smoke 21 36
req POST "$restart_url/v1/tenants/smoke/checkpoint" "" 200 "restart checkpoint"
capture "$restart_url" smoke "$work/restart-out"
kill -TERM "$restart_pid"
wait "$restart_pid" 2>/dev/null || true

# --- The guarantee: restored output is byte-identical to the control. -
for f in mode events heatmap transitions flows; do
    if ! cmp -s "$work/control-out/$f.json" "$work/restart-out/$f.json"; then
        echo "serve-smoke: $f.json differs between uninterrupted and restored runs" >&2
        diff "$work/control-out/$f.json" "$work/restart-out/$f.json" >&2 || true
        exit 1
    fi
done

go run ./scripts/manifestcheck -serve -events -alerts "$manifest"
echo "serve-smoke: ok — kill-and-restore output is byte-identical across 5 query endpoints"

// Command tracecheck validates a Chrome trace-event JSON file produced
// by `fenrir -trace`: the document is well formed (displayTimeUnit plus
// a traceEvents array of "X" duration and "M" metadata events), every
// span carries the required fields, every parent reference resolves,
// and at least one root span anchors the tree. With -require a,b,c it
// additionally asserts each named span appears nested under a parent —
// the smoke test uses this to prove tile/sweep/ingest children hang off
// the run root. With -canon it instead prints a canonical dump with the
// nondeterministic fields (ts, dur, tid) stripped, so two same-seed
// runs can be compared with cmp(1) without jq. Used by
// scripts/trace_smoke.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	canon := flag.Bool("canon", false, "print a canonical dump (ts/dur/tid stripped) instead of validating")
	require := flag.String("require", "", "comma-separated span names that must appear nested in the tree")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-canon] [-require a,b,c] <trace.json>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		fail("displayTimeUnit missing")
	}

	// First pass: field checks and the id table.
	ids := map[float64]bool{}
	spans := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			fail("event %d: unexpected phase %q", i, ev.Ph)
		}
		spans++
		if ev.Name == "" {
			fail("event %d: span has no name", i)
		}
		if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			fail("event %d (%s): X event missing ts/dur/pid/tid", i, ev.Name)
		}
		if *ev.Dur < 0 {
			fail("event %d (%s): negative duration %v", i, ev.Name, *ev.Dur)
		}
		id, ok := ev.Args["id"].(float64)
		if !ok || id <= 0 {
			fail("event %d (%s): args.id missing or not a positive number", i, ev.Name)
		}
		if ids[id] {
			fail("event %d (%s): duplicate span id %v", i, ev.Name, id)
		}
		ids[id] = true
	}
	if spans == 0 {
		fail("trace contains no spans")
	}

	// Second pass: parent links resolve (parent 0 marks a root), roots
	// exist, requirements met.
	roots := 0
	nested := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pid, ok := ev.Args["parent"].(float64)
		if !ok {
			fail("event %d (%s): args.parent missing or not a number", i, ev.Name)
		}
		if pid == 0 {
			roots++
			continue
		}
		if !ids[pid] {
			fail("event %d (%s): parent %v does not resolve to a span id", i, ev.Name, pid)
		}
		nested[ev.Name] = true
	}
	if roots == 0 {
		fail("no root span (every span has a parent)")
	}

	if *canon {
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			keys := make([]string, 0, len(ev.Args))
			for k := range ev.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%v", k, ev.Args[k]))
			}
			fmt.Printf("%s|%s\n", ev.Name, strings.Join(parts, ","))
		}
		return
	}

	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if !nested[name] {
				fail("required span %q never appears nested under a parent", name)
			}
		}
	}
	fmt.Printf("tracecheck: ok — %d spans, %d roots, %d distinct nested names\n",
		spans, roots, len(nested))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

#!/bin/sh
# bench2json.sh — parse `go test -bench -benchmem` output on stdin into a
# JSON array of {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
# Lines that are not benchmark results (GOMAXPROCS header, PASS, ok) are
# ignored. Used by `make bench` to write BENCH_core.json.
exec awk '
BEGIN { n = 0; print "[" }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { if (n) printf "\n"; print "]" }
'

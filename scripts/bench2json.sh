#!/bin/sh
# bench2json.sh — parse `go test -bench -benchmem` output on stdin into a
# JSON array of {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
# Lines that are not benchmark results (GOMAXPROCS header, PASS, ok) are
# ignored. Used by `make bench` to write BENCH_core.json.
#
# A failed run (a FAIL line in the output, or no benchmark results at
# all) exits 1 and echoes the raw input to stderr, so callers never
# mistake a broken bench run for an empty result set.

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
cat > "$tmp"

if grep -q '^FAIL' "$tmp"; then
	echo "bench2json: benchmark run FAILED:" >&2
	cat "$tmp" >&2
	exit 1
fi
if ! grep -q '^Benchmark' "$tmp"; then
	echo "bench2json: no benchmark results in input:" >&2
	cat "$tmp" >&2
	exit 1
fi

awk '
BEGIN { n = 0; print "[" }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { if (n) printf "\n"; print "]" }
' < "$tmp"

// Command manifestcheck asserts a fenrir run manifest is well formed:
// it parses, names every pipeline stage, and its stage durations account
// for at least 90% of the recorded wall time. With -faults it additionally
// asserts the fault-injection counters landed in the manifest: faults were
// injected, and the quarantine counter is present (even when zero). With
// -serve it instead validates a daemon manifest: no batch stages are
// required, but the serve ingest/tenant/checkpoint metrics must have
// landed. With -events it asserts the flight recorder folded structured
// events into the manifest with strictly increasing sequence numbers.
// With -alerts it asserts the telemetry-history alert engine ran (the
// alerts block is present with at least one evaluated rule and one
// sample) and warns loudly about rules still firing at shutdown. Exits
// non-zero with a diagnostic otherwise; used by scripts/obs_smoke.sh,
// scripts/faults_smoke.sh, scripts/serve_smoke.sh,
// scripts/shard_smoke.sh, and scripts/history_smoke.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fenrir/internal/obs"
)

var pipelineStages = []string{"generate", "observe", "similarity", "cluster", "transitions", "report"}

func main() {
	checkFaults := flag.Bool("faults", false, "assert fault-injection and quarantine counters are present")
	checkServe := flag.Bool("serve", false, "validate a daemon (fenrir -serve) manifest instead of a batch run")
	checkEvents := flag.Bool("events", false, "assert flight-recorder events landed in the manifest")
	checkAlerts := flag.Bool("alerts", false, "assert the telemetry-history alerts block landed in the manifest")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck [-faults] [-serve] [-events] [-alerts] <manifest.json>")
		os.Exit(2)
	}
	m, err := obs.LoadManifest(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	if m.Scenario == "" {
		fail("manifest has no scenario name")
	}
	if *checkEvents {
		checkManifestEvents(m)
	}
	if *checkAlerts {
		checkManifestAlerts(m)
	}
	checkEvictions(m)
	if *checkServe {
		checkServeManifest(m)
		return
	}
	var have []string
	for _, s := range m.Stages {
		have = append(have, s.Name)
	}
	for _, stage := range pipelineStages {
		rec := m.Stage(stage)
		if rec == nil {
			fail("stage %q missing from manifest (have %v)", stage, have)
		}
		if rec.Seconds < 0 {
			fail("stage %q has negative duration %v", stage, rec.Seconds)
		}
	}
	if m.WallSeconds <= 0 {
		fail("wall_seconds = %v", m.WallSeconds)
	}
	sum := m.StageSeconds()
	if sum > 1.05*m.WallSeconds {
		fail("stage seconds %.3f exceed wall %.3f", sum, m.WallSeconds)
	}
	if sum < 0.9*m.WallSeconds {
		fail("stage seconds %.3f cover only %.0f%% of wall %.3f (want >= 90%%)",
			sum, 100*sum/m.WallSeconds, m.WallSeconds)
	}
	if m.MatrixRows == 0 || m.Networks == 0 {
		fail("matrix shape missing: rows=%d networks=%d", m.MatrixRows, m.Networks)
	}
	if *checkFaults {
		injected, quarantineCounters := int64(0), 0
		for name, v := range m.Counters {
			switch {
			case strings.HasPrefix(name, "fenrir_faults_injected_total{"):
				injected += v
			case strings.HasPrefix(name, "fenrir_quarantined_total{"):
				quarantineCounters++
				if v < 0 {
					fail("counter %q is negative: %d", name, v)
				}
			}
		}
		if injected == 0 {
			fail("fault run manifest records no injected faults")
		}
		if quarantineCounters == 0 {
			fail("fault run manifest has no fenrir_quarantined_total counters")
		}
		fmt.Printf("manifestcheck: fault counters ok — %d injected, %d quarantine counters\n",
			injected, quarantineCounters)
	}
	fmt.Printf("manifestcheck: %s ok — %d stages, %.2fs wall (%.0f%% in stages), %dx%d matrix, %d modes\n",
		m.Scenario, len(m.Stages), m.WallSeconds, 100*sum/m.WallSeconds, m.MatrixRows, m.MatrixRows, m.Modes)
}

// checkServeManifest validates a daemon manifest: the serving layer has
// no batch pipeline stages, but it must account for ingest, tenants,
// and checkpoints.
func checkServeManifest(m *obs.Manifest) {
	if m.Scenario != "serve" {
		fail("scenario %q is not a serve manifest", m.Scenario)
	}
	if m.WallSeconds <= 0 {
		fail("wall_seconds = %v", m.WallSeconds)
	}
	ingested := m.Counters["fenrir_serve_ingest_total"]
	if ingested <= 0 {
		fail("daemon manifest records no ingested observations")
	}
	if m.Gauges["fenrir_serve_tenants"] < 1 {
		fail("daemon manifest records no tenants")
	}
	if m.Counters["fenrir_snapshot_writes_total"] <= 0 {
		fail("daemon manifest records no checkpoint writes")
	}
	rejected := int64(0)
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "fenrir_serve_rejected_total{") {
			if v < 0 {
				fail("counter %q is negative: %d", name, v)
			}
			rejected += v
		}
	}
	fmt.Printf("manifestcheck: serve ok — %d observations ingested, %.0f tenants, %d checkpoints, %d rejections\n",
		ingested, m.Gauges["fenrir_serve_tenants"], m.Counters["fenrir_snapshot_writes_total"], rejected)
}

// checkManifestEvents asserts the flight recorder's ring was folded into
// the manifest: at least one structured event, each with a message, in
// strictly increasing sequence order.
func checkManifestEvents(m *obs.Manifest) {
	if len(m.Events) == 0 {
		fail("manifest carries no flight-recorder events")
	}
	for i, ev := range m.Events {
		if ev.Msg == "" {
			fail("event %d has no message", i)
		}
		if i > 0 && ev.Seq <= m.Events[i-1].Seq {
			fail("event seqs not strictly increasing: %d then %d", m.Events[i-1].Seq, ev.Seq)
		}
	}
	fmt.Printf("manifestcheck: events ok — %d flight-recorder events (seq %d..%d)\n",
		len(m.Events), m.Events[0].Seq, m.Events[len(m.Events)-1].Seq)
}

// checkManifestAlerts asserts the telemetry-history alert engine was
// running: the manifest carries an alerts block with at least one
// evaluated rule and at least one sampler tick. A rule still firing at
// shutdown is not an error — the daemon may legitimately die mid-
// incident — but it is warned loudly so smoke scripts and operators see
// the unresolved state.
func checkManifestAlerts(m *obs.Manifest) {
	if m.Alerts == nil {
		fail("manifest has no alerts block — daemon was not self-observing (run with -history-every > 0)")
	}
	a := m.Alerts
	if a.Rules == 0 {
		fail("alerts block evaluated zero rules")
	}
	if a.Samples == 0 {
		fail("alerts block records zero sampler ticks")
	}
	if a.Transitions < 0 {
		fail("alerts block has negative transition count %d", a.Transitions)
	}
	for _, name := range a.Firing {
		fmt.Fprintf(os.Stderr, "manifestcheck: WARNING — rule %q still firing at shutdown\n", name)
	}
	fmt.Printf("manifestcheck: alerts ok — %d rules over %d samples, %d transitions, %d firing at shutdown\n",
		a.Rules, a.Samples, a.Transitions, len(a.Firing))
}

// checkEvictions asserts the telemetry-ring eviction counters landed in
// the manifest — their presence (zero included) is the proof that no
// span or event silently fell out of the bounded rings — and flags any
// nonzero eviction loudly: the manifest's trace and event sections are
// then known to be truncated views.
func checkEvictions(m *obs.Manifest) {
	for _, name := range []string{
		"fenrir_trace_spans_evicted_total",
		"fenrir_flight_events_evicted_total",
	} {
		v, ok := m.Counters[name]
		if !ok {
			fail("eviction counter %q missing from manifest", name)
		}
		if v < 0 {
			fail("counter %q is negative: %d", name, v)
		}
		if v > 0 {
			fmt.Fprintf(os.Stderr, "manifestcheck: WARNING — %s = %d: telemetry rings overflowed, manifest trace/events are truncated\n", name, v)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "manifestcheck: "+format+"\n", args...)
	os.Exit(1)
}

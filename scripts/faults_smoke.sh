#!/bin/sh
# faults_smoke.sh — end-to-end smoke test of the fault-injection layer:
# run a short scenario under a canned fault profile with -manifest, then
# assert the manifest carries the fault-injection and quarantine counters
# (manifestcheck -faults) plus flight-recorder events (-events). Used by
# `make faults-smoke` / `make check`.
set -e
cd "$(dirname "$0")/.."

m="$(mktemp /tmp/fenrir-faults-manifest.XXXXXX.json)"
trap 'rm -f "$m"' EXIT

go run ./cmd/fenrir -scenario wikipedia -faults light -faultseed 7 -manifest "$m" > /dev/null
go run ./scripts/manifestcheck -faults -events "$m"
echo "faults-smoke: ok"

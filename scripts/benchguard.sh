#!/bin/sh
# benchguard.sh — perf regression gate for the similarity hot path.
#
# Re-runs the serial T=1024 bitset similarity benchmark and compares the
# best (minimum) ns/op of a few repetitions against the committed
# baseline in BENCH_core.json. Fails if the fresh number is more than
# GUARD_PCT percent slower — `make check` then refuses to pass a change
# that quietly gives back the bitset engine's speedup. Refresh the
# baseline with `make bench` after a deliberate perf change.
#
# The minimum over -count runs is the standard noise filter: a loaded
# box can only make code look slower, never faster, so min-vs-baseline
# with a 15% margin keeps false alarms rare without masking real
# regressions.

set -eu

cd "$(dirname "$0")/.."

GUARD_PCT="${GUARD_PCT:-15}"
BASELINE="BENCH_core.json"
BENCH='SimilarityMatrix/T=1024/K=bitset/P=1$'
KEY='SimilarityMatrix/T=1024/K=bitset/P=1'

if [ ! -f "$BASELINE" ]; then
	echo "benchguard: $BASELINE not found — run 'make bench' and commit it" >&2
	exit 1
fi

base_ns="$(awk -v key="$KEY" '
	$0 ~ key && $0 !~ /P=auto/ {
		if (match($0, /"ns_per_op": [0-9.]+/)) {
			m = substr($0, RSTART, RLENGTH)
			sub(/.*: /, "", m)
			print m
			exit
		}
	}
' "$BASELINE")"
if [ -z "$base_ns" ]; then
	echo "benchguard: no '$KEY' entry in $BASELINE — run 'make bench' to refresh it" >&2
	exit 1
fi

out="$(go test -run '^$' -bench "$BENCH" -count=3 . 2>&1)" || {
	echo "$out" >&2
	echo "benchguard: benchmark run failed" >&2
	exit 1
}

fresh_ns="$(echo "$out" | awk '
	/^Benchmark/ {
		for (i = 2; i < NF; i++) if ($(i+1) == "ns/op" && (best == "" || $i + 0 < best + 0)) best = $i
	}
	END { print best }
')"
if [ -z "$fresh_ns" ]; then
	echo "$out" >&2
	echo "benchguard: no benchmark results for '$BENCH'" >&2
	exit 1
fi

awk -v base="$base_ns" -v fresh="$fresh_ns" -v pct="$GUARD_PCT" '
BEGIN {
	limit = base * (1 + pct / 100)
	printf "benchguard: %s baseline %.0f ns/op, fresh (min of 3) %.0f ns/op, limit +%s%% = %.0f ns/op\n",
		"T=1024/K=bitset/P=1", base, fresh, pct, limit
	if (fresh > limit) {
		printf "benchguard: FAIL — serial bitset similarity regressed %.1f%% over baseline\n",
			(fresh / base - 1) * 100
		exit 1
	}
	print "benchguard: OK"
}
'

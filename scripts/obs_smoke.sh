#!/bin/sh
# obs_smoke.sh — end-to-end smoke test of the observability layer: run a
# short scenario with -metrics (on an ephemeral port) and -manifest, then
# assert the manifest parses, names every pipeline stage, and accounts
# for the run's wall time. Used by `make obs-smoke` / `make check`.
set -e
cd "$(dirname "$0")/.."

m="$(mktemp /tmp/fenrir-manifest.XXXXXX.json)"
trap 'rm -f "$m"' EXIT

go run ./cmd/fenrir -scenario wikipedia -metrics 127.0.0.1:0 -manifest "$m" > /dev/null
go run ./scripts/manifestcheck "$m"
echo "obs-smoke: ok"

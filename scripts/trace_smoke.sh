#!/bin/sh
# trace_smoke.sh — end-to-end smoke test of the trace-tree layer: run the
# broot scenario twice with -trace, validate each output as Chrome
# trace-event JSON with tile/sweep/ingest spans nested under the run
# root (tracecheck -require), and assert the canonical dumps — with the
# nondeterministic ts/dur/tid fields stripped — are byte-identical
# across the two same-seed runs. Used by `make trace-smoke` / `make check`.
set -e
cd "$(dirname "$0")/.."

d="$(mktemp -d /tmp/fenrir-trace-smoke.XXXXXX)"
trap 'rm -rf "$d"' EXIT

go run ./cmd/fenrir -scenario broot -trace "$d/a.json" > /dev/null
go run ./cmd/fenrir -scenario broot -trace "$d/b.json" > /dev/null

go run ./scripts/tracecheck -require tile,sweep,ingest "$d/a.json"
go run ./scripts/tracecheck -require tile,sweep,ingest "$d/b.json"

go run ./scripts/tracecheck -canon "$d/a.json" > "$d/a.canon"
go run ./scripts/tracecheck -canon "$d/b.json" > "$d/b.canon"
if ! cmp -s "$d/a.canon" "$d/b.canon"; then
    echo "trace-smoke: canonical trace trees differ across same-seed runs" >&2
    diff "$d/a.canon" "$d/b.canon" | head -20 >&2
    exit 1
fi
echo "trace-smoke: ok — same-seed trace trees identical ($(wc -l < "$d/a.canon" | tr -d ' ') spans)"

#!/bin/sh
# serve_load.sh — drives the daemon under concurrent load with the race
# detector enabled. Builds fenrir with -race, starts one daemon, then
# runs WRITERS concurrent ingest streams (one tenant each, so every
# stream keeps strict epoch order) plus one contended tenant that all
# writers race to feed (exercising the duplicate/out-of-order rejection
# path), while READERS goroutines hammer the query and metrics
# endpoints. Any race report or 5xx fails the script.
#
# On success the run's ingest throughput and client-observed admission
# latency quantiles (per accepted POST, ordered writers only) are written
# to BENCH_OUT in the same JSON shape bench2json.sh produces for `make
# bench`, so serve-path regressions diff exactly like kernel ones.
#
# Phase 2 is the tenant-scale sweep: a release (non-race) build serves
# TENANTS tenants (default 1024) at each shard count in SHARD_SET while
# scripts/serveload feeds them from LOAD_WRITERS concurrent producers,
# recording per-shard-count throughput and admission p50/p90/p99 rows
# alongside the phase-1 rows. SHARD_SET="" skips the sweep.
#
#   WRITERS=8 EPOCHS=200 READERS=6 ./scripts/serve_load.sh
#   TENANTS=2048 SHARD_SET="1 8" ./scripts/serve_load.sh
set -e
cd "$(dirname "$0")/.."

WRITERS="${WRITERS:-4}"
EPOCHS="${EPOCHS:-120}"
READERS="${READERS:-4}"
WINDOW="${WINDOW:-32}"
BENCH_OUT="${BENCH_OUT:-BENCH_serve.json}"
SHARD_SET="${SHARD_SET:-1 4 8}"
TENANTS="${TENANTS:-1024}"
LOAD_EPOCHS="${LOAD_EPOCHS:-16}"
LOAD_WRITERS="${LOAD_WRITERS:-8}"

work="$(mktemp -d /tmp/fenrir-serve-load.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

bin="$work/fenrir"
go build -race -o "$bin" ./cmd/fenrir

"$bin" -serve 127.0.0.1:0 -snapshot-dir "$work/state" -snapshot-every 32 \
    2>"$work/daemon.log" &
daemon_pid=$!
pids="$pids $daemon_pid"

i=0
url=""
while [ $i -lt 200 ]; do
    url=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$work/daemon.log" | head -1)
    [ -n "$url" ] && break
    sleep 0.05
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "serve-load: daemon never announced its address" >&2
    cat "$work/daemon.log" >&2
    exit 1
fi

spec='{"networks":["n00","n01","n02","n03","n04","n05","n06","n07"],"start":"2026-01-01T00:00:00Z","interval_seconds":240,"epochs":65536}'

obs_json() { # epoch
    e=$1
    if [ $(((e / 16) % 2)) -eq 0 ]; then base=alpha; else base=beta; fi
    printf '{"epoch":%d,"sites":{' "$e"
    sep=""
    i=0
    while [ $i -lt 8 ]; do
        if [ $(((i + e) % 11)) -ne 0 ]; then
            printf '%s"n%02d":"%s"' "$sep" "$i" "$base"
            sep=","
        fi
        i=$((i + 1))
    done
    printf '}}'
}

# One tenant per writer plus a shared tenant every writer races to feed,
# plus one sliding-window tenant whose sustained append throughput (every
# append past the bound also pays an eviction) lands in BENCH_OUT.
winspec=$(printf '%s' "$spec" | sed "s/^{/{\"window\":$WINDOW,/")

w=0
while [ $w -lt "$WRITERS" ]; do
    curl -s -o /dev/null -X PUT -d "$spec" "$url/v1/tenants/w$w"
    w=$((w + 1))
done
curl -s -o /dev/null -X PUT -d "$spec" "$url/v1/tenants/shared"
curl -s -o /dev/null -X PUT -d "$winspec" "$url/v1/tenants/bounded"

writer() { # tenant
    e=0
    lat="$work/lat.$1"
    while [ $e -lt "$EPOCHS" ]; do
        body=$(obs_json $e)
        out=$(curl -s -o /dev/null -w '%{http_code} %{time_total}' -X POST -d "$body" \
            "$url/v1/tenants/$1/observations")
        code="${out%% *}"
        case "$code" in
        202)
            echo "${out#* }" >>"$lat"
            e=$((e + 1))
            ;;
        429) sleep 0.02 ;; # backpressure: retry same epoch
        *)
            echo "serve-load: writer $1 epoch $e: HTTP $code" >&2
            exit 1
            ;;
        esac
    done
}

# Contended writers: 400s (duplicate/out-of-order) are the point.
contended_writer() {
    e=0
    while [ $e -lt "$EPOCHS" ]; do
        curl -s -o /dev/null -X POST -d "$(obs_json $e)" \
            "$url/v1/tenants/shared/observations"
        e=$((e + 1))
    done
}

reader() { # id
    stop="$work/stop"
    while [ ! -f "$stop" ]; do
        for ep in "" /mode "/events?n=10" /heatmap /transitions "/flows?k=3"; do
            code=$(curl -s -o /dev/null -w '%{http_code}' \
                "$url/v1/tenants/w$((${1} % WRITERS))$ep")
            case "$code" in
            5*)
                echo "serve-load: reader $1 got HTTP $code on $ep" >&2
                touch "$work/reader-failed"
                return 1
                ;;
            esac
        done
        code=$(curl -s -o /dev/null -w '%{http_code}' "$url/metrics")
        [ "$code" = 200 ] || { touch "$work/reader-failed"; return 1; }
    done
}

# Windowed writer: same strict-order stream, but its wall clock is
# captured separately so the windowed-ingest row measures only it.
windowed_writer() {
    ws=$(date +%s%N)
    writer bounded
    we=$(date +%s%N)
    echo $((we - ws)) >"$work/bounded.wall"
}

start_ns=$(date +%s%N)
writer_pids=""
w=0
while [ $w -lt "$WRITERS" ]; do
    writer "w$w" &
    writer_pids="$writer_pids $!"
    contended_writer &
    writer_pids="$writer_pids $!"
    w=$((w + 1))
done
windowed_writer &
writer_pids="$writer_pids $!"
r=0
reader_pids=""
while [ $r -lt "$READERS" ]; do
    reader "$r" &
    reader_pids="$reader_pids $!"
    r=$((r + 1))
done
pids="$pids $writer_pids $reader_pids"

fail=0
for p in $writer_pids; do
    wait "$p" || fail=1
done
end_ns=$(date +%s%N)
touch "$work/stop"
for p in $reader_pids; do
    wait "$p" || true
done
[ -f "$work/reader-failed" ] && fail=1

# The bounded tenant must report its window and, once its queue drains,
# a history plateaued at the bound with the rest counted as evictions.
# Status JSON is pretty-printed; strip whitespace before matching.
status=""
i=0
while [ $i -lt 200 ]; do
    status=$(curl -s "$url/v1/tenants/bounded" | tr -d ' \n\t')
    case "$status" in
    *'"appends":'$EPOCHS[,}]*) break ;;
    esac
    sleep 0.05
    i=$((i + 1))
done
want_hist=$EPOCHS
[ "$EPOCHS" -gt "$WINDOW" ] && want_hist=$WINDOW
case "$status" in
*'"window":'$WINDOW[,}]*) ;;
*)
    echo "serve-load: bounded tenant lost its window: $status" >&2
    fail=1
    ;;
esac
case "$status" in
*'"history":'$want_hist[,}]*) ;;
*)
    echo "serve-load: bounded history did not plateau at $want_hist: $status" >&2
    fail=1
    ;;
esac

kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || fail=1

if grep -q 'WARNING: DATA RACE' "$work/daemon.log"; then
    echo "serve-load: race detector fired:" >&2
    cat "$work/daemon.log" >&2
    exit 1
fi
if [ "$fail" -ne 0 ]; then
    echo "serve-load: failed (writer error, reader 5xx, or unclean shutdown)" >&2
    exit 1
fi

# Roll the accepted-POST latencies into bench2json.sh-shaped rows:
# throughput as ns per accepted observation over the whole write phase,
# p50/p90/p99 admission latency across ordered writers, and the bounded
# tenant's sustained append throughput over its own wall clock (every
# accepted append past the bound also pays an eviction). Rows accumulate
# one-per-line in $work/rows; the sweep below appends to them and the
# array is assembled at the end.
win_n=$(wc -l <"$work/lat.bounded")
win_wall=$(cat "$work/bounded.wall")
sort -g "$work"/lat.w[0-9]* | awk \
    -v wall_ns=$((end_ns - start_ns)) \
    -v writers="$WRITERS" -v readers="$READERS" \
    -v window="$WINDOW" -v win_n="$win_n" -v win_wall="$win_wall" '
    { v[NR] = $1 }
    END {
        if (NR == 0 || win_n == 0) exit 1
        q50 = v[int(0.50 * (NR - 1)) + 1] * 1e9
        q90 = v[int(0.90 * (NR - 1)) + 1] * 1e9
        q99 = v[int(0.99 * (NR - 1)) + 1] * 1e9
        printf "{\"name\": \"ServeLoad/ingest-throughput/W=%d/R=%d\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", writers, readers, NR, wall_ns / NR
        printf "{\"name\": \"ServeLoad/admission-latency-p50\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", NR, q50
        printf "{\"name\": \"ServeLoad/admission-latency-p90\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", NR, q90
        printf "{\"name\": \"ServeLoad/admission-latency-p99\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", NR, q99
        printf "{\"name\": \"ServeLoad/windowed-ingest-throughput/window=%d\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", window, win_n, win_wall / win_n
    }' >"$work/rows"
echo "serve-load: ok — $WRITERS ordered writers + $WRITERS contended writers + 1 windowed writer (window $WINDOW) + $READERS readers, $EPOCHS epochs each, no races, no 5xx"

# Phase 2: the tenant-scale sweep. A release build (throughput, not race
# hunting) hosts TENANTS tenants at each shard count; scripts/serveload
# feeds them from LOAD_WRITERS concurrent keepalive producers and emits
# one throughput row plus admission quantile rows per shard count, all
# labelled S=<shards> so shard scaling diffs row against row.
if [ -n "$SHARD_SET" ]; then
    relbin="$work/fenrir-rel"
    loadbin="$work/serveload"
    go build -o "$relbin" ./cmd/fenrir
    go build -o "$loadbin" ./scripts/serveload
    for S in $SHARD_SET; do
        log="$work/sweep-$S.log"
        "$relbin" -serve 127.0.0.1:0 -shards "$S" 2>"$log" &
        sweep_pid=$!
        pids="$pids $sweep_pid"
        surl=""
        i=0
        while [ $i -lt 200 ]; do
            surl=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$log" | head -1)
            [ -n "$surl" ] && break
            sleep 0.05
            i=$((i + 1))
        done
        if [ -z "$surl" ]; then
            echo "serve-load: sweep daemon (S=$S) never announced its address" >&2
            cat "$log" >&2
            exit 1
        fi
        "$loadbin" -url "$surl" -tenants "$TENANTS" -epochs "$LOAD_EPOCHS" \
            -writers "$LOAD_WRITERS" -label "S=$S" >>"$work/rows"
        kill "$sweep_pid" 2>/dev/null || true
        wait "$sweep_pid" 2>/dev/null || true
        echo "serve-load: sweep S=$S done ($TENANTS tenants x $LOAD_EPOCHS epochs)"
    done
fi

# Phase 3: the history-overhead A/B. The same release build and load
# shape runs twice — telemetry history sampling at 100ms (aggressive:
# the production default is 10s) versus fully off — and the paired
# ServeLoad/history-overhead-* rows land next to each other so the
# sampler's ingest cost is a one-line diff. The run prints the measured
# overhead; the budget is <= 5% at the 100ms interval. HISTORY_AB=""
# skips the phase.
HISTORY_AB="${HISTORY_AB:-1}"
HIST_TENANTS="${HIST_TENANTS:-64}"
HIST_EPOCHS="${HIST_EPOCHS:-32}"
if [ -n "$HISTORY_AB" ]; then
    relbin="$work/fenrir-rel"
    loadbin="$work/serveload"
    [ -x "$relbin" ] || go build -o "$relbin" ./cmd/fenrir
    [ -x "$loadbin" ] || go build -o "$loadbin" ./scripts/serveload
    for hv in 100ms 0; do
        case "$hv" in
        0) hl=off ;;
        *) hl=on ;;
        esac
        log="$work/hist-$hl.log"
        "$relbin" -serve 127.0.0.1:0 -history-every "$hv" 2>"$log" &
        ab_pid=$!
        pids="$pids $ab_pid"
        hurl=""
        i=0
        while [ $i -lt 200 ]; do
            hurl=$(sed -n 's!^fenrir: serving api \(http://[^ ]*\).*!\1!p' "$log" | head -1)
            [ -n "$hurl" ] && break
            sleep 0.05
            i=$((i + 1))
        done
        if [ -z "$hurl" ]; then
            echo "serve-load: history A/B daemon (history=$hl) never announced its address" >&2
            cat "$log" >&2
            exit 1
        fi
        "$loadbin" -url "$hurl" -tenants "$HIST_TENANTS" -epochs "$HIST_EPOCHS" \
            -writers "$LOAD_WRITERS" -prefix history-overhead -label "history=$hl" \
            >>"$work/rows"
        kill "$ab_pid" 2>/dev/null || true
        wait "$ab_pid" 2>/dev/null || true
        echo "serve-load: history A/B history=$hl done ($HIST_TENANTS tenants x $HIST_EPOCHS epochs)"
    done
    awk -F'"' '
        /history-overhead-ingest-throughput\/history=on/ { on = $0 }
        /history-overhead-ingest-throughput\/history=off/ { off = $0 }
        END {
            if (on == "" || off == "") exit 0
            split(on, a, "ns_per_op\": "); non = a[2] + 0
            split(off, b, "ns_per_op\": "); noff = b[2] + 0
            pct = 100 * (non - noff) / noff
            printf "serve-load: history sampling overhead %.1f%% ns/op (on %.0f vs off %.0f; budget <= 5%%)\n", pct, non, noff
        }' "$work/rows"
fi

# Assemble the JSON array from the accumulated rows.
{
    printf "[\n"
    sed 's/^/  /; $!s/$/,/' "$work/rows"
    printf "]\n"
} >"$BENCH_OUT"
echo "serve-load: bench written to $BENCH_OUT ($(wc -l <"$work/rows") rows)"

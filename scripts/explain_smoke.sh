#!/bin/sh
# explain_smoke.sh — end-to-end check of detection provenance: run the
# groot scenario (whose scripted calendar drains the STR site) with
# -explain and assert every change event carries a verdict, the first
# drain's top flow names STR as the emptied site, and at least one later
# event is labeled a recurrence — the repeated drain rediscovering the
# earlier drained mode. Additionally assert the manifest's detections
# section records the same headline flow. Used by `make explain-smoke` /
# `make check`.
set -e
cd "$(dirname "$0")/.."

m="$(mktemp /tmp/fenrir-manifest.XXXXXX.json)"
out="$(mktemp /tmp/fenrir-explain.XXXXXX.txt)"
trap 'rm -f "$m" "$out"' EXIT

go run ./cmd/fenrir -scenario groot -explain -manifest "$m" >"$out"

events=$(grep -c '^change at epoch' "$out") || {
    echo "explain-smoke: no change events in output" >&2
    cat "$out" >&2
    exit 1
}
verdicts=$(grep -c '  verdict: ' "$out")
if [ "$verdicts" -ne "$events" ]; then
    echo "explain-smoke: $events events but $verdicts verdicts — some event has no explanation" >&2
    cat "$out" >&2
    exit 1
fi

# The first change is the first STR drain: its headline flow must name
# STR as the source the mass left.
first_flow=$(sed -n '/^change at epoch/,$p' "$out" | grep '  flow: ' | head -1)
case "$first_flow" in
*"flow: STR -> "*) ;;
*)
    echo "explain-smoke: first drain's top flow does not name STR: '$first_flow'" >&2
    cat "$out" >&2
    exit 1
    ;;
esac

if ! grep -q '  verdict: recurrence-of mode ' "$out"; then
    echo "explain-smoke: repeated drain was never labeled a recurrence" >&2
    cat "$out" >&2
    exit 1
fi

# The manifest's detections section must carry the same headline flow.
if ! grep -q '"flow_from":"STR"' "$m" && ! grep -q '"flow_from": *"STR"' "$m"; then
    echo "explain-smoke: manifest detections do not record the STR drain flow" >&2
    cat "$m" >&2
    exit 1
fi

echo "explain-smoke: ok — $events explained events, first drain attributed to STR, recurrences labeled"

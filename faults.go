package fenrir

import (
	"fenrir/internal/clean"
	"fenrir/internal/core"
	"fenrir/internal/faults"
	"fenrir/internal/measure/traceroute"
	"fenrir/internal/obs"
)

// Fault injection (DESIGN.md §7): the scenario runners accept a
// FaultProfile that wraps every measurement substrate in a deterministic,
// seed-driven fault layer — packet loss bursts, duplication, reordering,
// payload corruption, delay spikes, stuck and bogus site labels, truncated
// BGP streams, and vantage-point blackouts. The zero profile keeps every
// run byte-identical to an unfaulted one; a fixed fault seed reproduces
// the identical fault pattern (and therefore identical outputs) at any
// parallelism.
type (
	// FaultProfile selects fault classes and rates; the zero value
	// disables injection entirely.
	FaultProfile = faults.Profile
	// FaultReport summarizes what a run injected, retried, and
	// quarantined, keyed by substrate and fault kind.
	FaultReport = faults.Report
	// RetryPolicy bounds the engines' retry-with-exponential-backoff
	// budgets under injected faults.
	RetryPolicy = faults.RetryPolicy
	// QuarantineReport details the observations the ingest quarantine
	// replaced with unknowns, keyed by offending site label.
	QuarantineReport = clean.QuarantineReport
)

// Named fault profiles and the typed errors the fault layer and the
// hardened ingest boundaries surface instead of panicking.
var (
	// FaultProfileByName resolves "none", "light", "heavy", "blackout",
	// or "corrupt" to a profile.
	FaultProfileByName = faults.ByName
	// FaultProfileNames lists the named profiles.
	FaultProfileNames = faults.Names
	// DefaultRetryPolicy is the budget the scenario runners give each
	// substrate: 3 attempts, 50 ms base backoff doubling to 800 ms,
	// 30 s total budget.
	DefaultRetryPolicy = faults.DefaultRetryPolicy

	// ErrInjected marks errors produced by the fault layer itself
	// (match with errors.Is).
	ErrInjected = faults.ErrInjected
	// ErrForeignSpace reports a vector built over a different Space
	// than the series being assembled.
	ErrForeignSpace = core.ErrForeignSpace
)

// Typed errors from the hardened ingest boundaries.
type (
	// DuplicateEpochError reports two vectors claiming the same epoch.
	DuplicateEpochError = core.DuplicateEpochError
	// NotInSpaceError reports a traceroute destination outside the
	// measurement space.
	NotInSpaceError = traceroute.NotInSpaceError
)

// TryNewSeries assembles a series like NewSeries but returns typed errors
// (ErrForeignSpace, DuplicateEpochError) instead of panicking — the
// graceful-degradation entry point for callers ingesting untrusted
// observation batches.
func TryNewSeries(space *Space, sched Schedule, vectors []*Vector) (*Series, error) {
	return core.TryNewSeries(space, sched, vectors, nil)
}

// Quarantine replaces observations whose site label fails valid with
// unknowns, returning the cleaned series and a report of what was removed.
// Counters land in reg (fenrir_quarantined_total and per-label breakdowns)
// when reg is non-nil.
func Quarantine(s *Series, valid func(string) bool, reg *obs.Registry) (*Series, *QuarantineReport) {
	return clean.Quarantine(s, valid, reg)
}

// Package fenrir is the public API of this repository: a Go implementation
// of Fenrir, the system from "Rediscovering Recurring Routing Results"
// (Song & Heidemann, USC/ISI), together with the measurement substrates it
// runs on.
//
// # What Fenrir does
//
// Routing on the Internet is the emergent product of every network's
// policies, so a service operator cannot directly see how much of their
// routing changed, whether a change was theirs or a third party's, or
// whether today's routing is a rerun of a state seen before. Fenrir answers
// those questions from measurements alone:
//
//  1. encode each observation round as a routing vector — the catchment
//     (serving site, or transit AS at a chosen hop) of every network;
//  2. clean the raw observations (drop bogus data, suppress
//     micro-catchments, interpolate one-shot losses);
//  3. optionally weight networks by what they represent (addresses,
//     traffic, users);
//  4. compare vectors pairwise with weighted Gower similarity Φ — "routing
//     today is 80% like last month" becomes a number;
//  5. cluster the vectors to discover recurring routing modes;
//  6. quantify any two states with a transition matrix, and detect change
//     events for validation against operator ground truth.
//
// # Layout
//
// The facade in this package covers the analysis pipeline for users who
// bring their own observations. The simulated Internet (AS topology, BGP
// policy routing, packet forwarding, and the four measurement engines —
// Verfploeter, Atlas-style VP meshes, scamper-style traceroute, and EDNS
// Client-Subnet website mapping) lives under internal/, driven through the
// scenario runner exposed here and through cmd/experiments, which
// regenerates every table and figure of the paper (see EXPERIMENTS.md).
//
// # Quickstart
//
// Build a Space over your networks, fill one Vector per observation round,
// and hand the Series to Analyze:
//
//	space := fenrir.NewSpace([]string{"192.0.2.0/24", "198.51.100.0/24"})
//	v0 := space.NewVector(0)
//	v0.Set(0, "LAX")
//	v0.Set(1, "AMS")
//	// ... one vector per round ...
//	series := fenrir.NewSeries(space, schedule, vectors)
//	res := fenrir.Analyze(series, fenrir.DefaultAnalysisOptions())
//	fmt.Println(res.Report())
//
// See examples/ for complete programs.
package fenrir

import (
	"fmt"

	"fenrir/internal/clean"
	"fenrir/internal/core"
	"fenrir/internal/obs"
	"fenrir/internal/report"
	"fenrir/internal/timeline"
	"fenrir/internal/weight"
)

// Re-exported core types: the facade keeps user code free of internal
// import paths while the implementation stays in internal/core.
type (
	// Space is the fixed universe of networks plus the interned site
	// alphabet shared by a family of vectors.
	Space = core.Space
	// Vector is one routing result D(t).
	Vector = core.Vector
	// Series is an epoch-ordered collection of vectors.
	Series = core.Series
	// SimMatrix is an all-pairs Φ matrix.
	SimMatrix = core.SimMatrix
	// MatrixOptions tunes the parallel similarity engine.
	MatrixOptions = core.MatrixOptions
	// Mode is a recurring routing result discovered by clustering.
	Mode = core.Mode
	// ModesResult is the outcome of mode discovery.
	ModesResult = core.ModesResult
	// TransitionMatrix counts networks moving between catchments.
	TransitionMatrix = core.TransitionMatrix
	// ChangeEvent is a detected routing change.
	ChangeEvent = core.ChangeEvent
	// Explanation is a change event's provenance: contributing
	// networks, site weight flows, unknown-mass accounting, and the
	// recurrence verdict.
	Explanation = core.Explanation
	// Contributor is one network's part in a change event.
	Contributor = core.Contributor
	// Flow is one site→site weight flow of a transition matrix.
	Flow = core.Flow
	// UnknownMode selects Φ's treatment of unobserved networks.
	UnknownMode = core.UnknownMode
	// SimKernel selects the similarity engine (bitset vs scalar).
	SimKernel = core.SimKernel
	// Epoch indexes observation rounds.
	Epoch = timeline.Epoch
	// Schedule maps epochs to wall-clock timestamps.
	Schedule = timeline.Schedule
)

// Φ unknown-handling modes (§2.6.1 and the paper's stated ongoing work).
const (
	PessimisticUnknown = core.PessimisticUnknown
	KnownOnly          = core.KnownOnly
)

// Similarity engine selectors. KernelAuto (the zero value) picks the
// packed-bitset engine whenever its word-ops bound beats the scalar
// kernels for the space's shape; both engines are bit-identical, so the
// choice is purely about speed. See DESIGN.md §12.
const (
	KernelAuto   = core.KernelAuto
	KernelBitset = core.KernelBitset
	KernelScalar = core.KernelScalar
)

// SetDefaultKernel overrides the process-wide engine choice applied when
// MatrixOptions.Kernel (or AnalysisOptions.Kernel) is KernelAuto — the
// hook behind the CLI's -kernel flag. Safe for concurrent use.
func SetDefaultKernel(k SimKernel) { core.SetDefaultKernel(k) }

// Reserved site labels.
const (
	SiteError = core.SiteError
	SiteOther = core.SiteOther
)

// NewSpace creates a Space over the given network identifiers.
func NewSpace(networks []string) *Space { return core.NewSpace(networks) }

// NewSeries assembles a series from vectors sharing a space.
func NewSeries(space *Space, sched Schedule, vectors []*Vector) *Series {
	return core.NewSeries(space, sched, vectors, nil)
}

// NewSchedule builds an observation schedule.
var NewSchedule = timeline.NewSchedule

// Gower computes the weighted similarity Φ(a, b); w may be nil.
func Gower(a, b *Vector, w []float64, mode UnknownMode) float64 {
	return core.Gower(a, b, w, mode)
}

// SimilarityMatrixParallel computes the all-pairs Φ matrix with a tiled
// worker pool; see MatrixOptions. All parallelism settings produce the
// bit-identical matrix.
func SimilarityMatrixParallel(s *Series, w []float64, mode UnknownMode, opts MatrixOptions) *SimMatrix {
	return core.SimilarityMatrixParallel(s, w, mode, opts)
}

// Transition computes the transition matrix between two vectors.
func Transition(a, b *Vector, w []float64) *TransitionMatrix {
	return core.Transition(a, b, w)
}

// UniformWeights returns the all-ones weight vector for a space.
func UniformWeights(s *Space) []float64 { return weight.Uniform(s) }

// CountWeights weighs networks by represented-unit counts (§2.5).
func CountWeights(s *Space, counts map[string]float64, def float64) []float64 {
	return weight.ByCount(s, counts, def)
}

// AnalysisOptions configures the full pipeline run by Analyze.
type AnalysisOptions struct {
	// Weights is the per-network weight vector; nil means uniform.
	Weights []float64
	// Unknowns selects Φ's unknown handling.
	Unknowns UnknownMode
	// Parallelism sizes the worker pool of the similarity stage: 0 uses
	// all cores (GOMAXPROCS), 1 forces the serial reference path. The
	// result is bit-identical at every setting.
	Parallelism int
	// Kernel selects the similarity engine; KernelAuto (default) picks
	// the faster of bitset and scalar for the space's shape. The result
	// is bit-identical at every setting.
	Kernel SimKernel
	// Clean enables the §2.4 cleaning stages before analysis.
	Clean bool
	// ValidSites, when non-nil, quarantines observations whose site label
	// it rejects (replacing them with unknowns) before the other cleaning
	// stages — the ingest guard for fault-injected or untrusted data (see
	// DESIGN.md §7). Applied only when Clean is set.
	ValidSites func(site string) bool
	// InterpolateReach bounds temporal interpolation (default 3).
	InterpolateReach int
	// MicroCatchmentShare marks sites below this mean share of known
	// assignments as micro-catchments to suppress (0 disables).
	MicroCatchmentShare float64
	// Clustering tunes mode discovery.
	Clustering core.AdaptiveOptions
	// Detection tunes change detection.
	Detection core.DetectOptions
	// Obs receives pipeline instrumentation: stage spans (clean,
	// similarity, cluster, detect) plus the engine's counters and
	// histograms. nil disables instrumentation with no behavioural
	// change. See NewRegistry.
	Obs *obs.Registry
}

// DefaultAnalysisOptions mirrors the paper's configuration.
func DefaultAnalysisOptions() AnalysisOptions {
	return AnalysisOptions{
		Unknowns:            PessimisticUnknown,
		Clean:               true,
		InterpolateReach:    3,
		MicroCatchmentShare: 0,
		Clustering:          core.DefaultAdaptiveOptions(),
		Detection:           core.DefaultDetectOptions(),
	}
}

// Analysis is the result of the full Fenrir pipeline over a series.
type Analysis struct {
	// Series is the (possibly cleaned) series the analysis ran on.
	Series *Series
	// Matrix is the all-pairs Φ matrix.
	Matrix *SimMatrix
	// Modes is the discovered mode structure.
	Modes *ModesResult
	// Changes are the detected change events.
	Changes []ChangeEvent
	// Coverage is the fraction of known (network, epoch) cells after
	// cleaning.
	Coverage float64
	// Suppressed lists micro-catchment sites that were folded into
	// "other".
	Suppressed []string
	// Quarantined reports what the ValidSites guard removed; nil when no
	// guard was configured.
	Quarantined *QuarantineReport
}

// Analyze runs the complete pipeline of Table 1 on a series: cleaning,
// similarity, clustering, and change detection.
func Analyze(s *Series, opts AnalysisOptions) *Analysis {
	a := &Analysis{Series: s}
	if opts.Clean {
		spClean := opts.Obs.StartSpan("clean")
		if opts.ValidSites != nil {
			s, a.Quarantined = clean.Quarantine(s, opts.ValidSites, opts.Obs)
			a.Series = s
		}
		if opts.MicroCatchmentShare > 0 {
			a.Suppressed = clean.MicroCatchments(s, opts.MicroCatchmentShare)
			s = clean.SuppressSites(s, a.Suppressed)
		}
		reach := opts.InterpolateReach
		if reach <= 0 {
			reach = 3
		}
		s = clean.Interpolate(s, clean.InterpolateOptions{MaxReach: reach})
		a.Series = s
		spClean.SetItems(int64(s.Len()))
		spClean.End()
	}
	a.Coverage = clean.Coverage(s)
	spSim := opts.Obs.StartSpan("similarity")
	a.Matrix = core.SimilarityMatrixParallel(s, opts.Weights, opts.Unknowns,
		core.MatrixOptions{Kernel: opts.Kernel, Parallelism: opts.Parallelism, Obs: opts.Obs, Span: spSim})
	spSim.SetItems(int64(a.Matrix.N) * int64(a.Matrix.N-1) / 2)
	spSim.SetWorkers(int(opts.Obs.Gauge("fenrir_similarity_workers").Value()))
	spSim.End()
	spCl := opts.Obs.StartSpan("cluster")
	clOpts := opts.Clustering
	clOpts.Obs = opts.Obs
	clOpts.Span = spCl
	a.Modes = core.DiscoverModes(a.Matrix, clOpts)
	spCl.End()
	spDet := opts.Obs.StartSpan("detect")
	a.Changes = core.DetectChanges(s, opts.Weights, opts.Detection)
	core.ObserveDetections(opts.Obs, spDet, a.Changes)
	spDet.SetItems(int64(len(a.Changes)))
	spDet.End()
	return a
}

// Report renders the analysis as human-readable text: the mode summary,
// the ASCII heatmap, and the detected changes.
func (a *Analysis) Report() string {
	out := report.ModesSummary(a.Modes)
	out += report.Heatmap(a.Matrix, 60)
	for _, c := range a.Changes {
		out += formatChange(c)
	}
	return out
}

// Heatmap renders just the similarity heatmap at the given resolution.
func (a *Analysis) Heatmap(dim int) string { return report.Heatmap(a.Matrix, dim) }

// StackPlot renders the per-epoch catchment aggregates as CSV.
func (a *Analysis) StackPlot() string { return report.StackPlot(a.Series) }

func formatChange(c ChangeEvent) string {
	out := fmt.Sprintf("change at epoch %d: Phi dropped to %.2f (baseline %.2f)\n",
		int(c.At), c.Phi, c.Baseline)
	if ex := c.Explanation; ex != nil {
		out += fmt.Sprintf("  %s\n", ex.Label())
		if f, ok := ex.TopFlow(); ok {
			out += fmt.Sprintf("  top flow: %s -> %s (%.0f)\n", f.From, f.To, f.Count)
		}
	}
	return out
}

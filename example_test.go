package fenrir_test

import (
	"fmt"
	"time"

	"fenrir"
)

// ExampleAnalyze runs the full pipeline on a tiny hand-made series with a
// routing change half way through.
func ExampleAnalyze() {
	space := fenrir.NewSpace([]string{"net-a", "net-b", "net-c", "net-d"})
	sched := fenrir.NewSchedule(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, 10)

	var vectors []*fenrir.Vector
	for day := 0; day < 10; day++ {
		v := space.NewVector(fenrir.Epoch(day))
		for i := 0; i < 4; i++ {
			if day < 5 {
				v.Set(i, "LAX")
			} else {
				v.Set(i, "AMS")
			}
		}
		vectors = append(vectors, v)
	}

	analysis := fenrir.Analyze(fenrir.NewSeries(space, sched, vectors), fenrir.DefaultAnalysisOptions())
	fmt.Printf("modes: %d\n", len(analysis.Modes.Modes))
	fmt.Printf("changes: %d at epoch %d\n", len(analysis.Changes), analysis.Changes[0].At)
	// Output:
	// modes: 2
	// changes: 1 at epoch 5
}

// ExampleGower shows the similarity measure with and without weights.
func ExampleGower() {
	space := fenrir.NewSpace([]string{"big-isp", "small-isp"})
	a := space.NewVector(0)
	a.Set(0, "LAX")
	a.Set(1, "LAX")
	b := space.NewVector(1)
	b.Set(0, "LAX")
	b.Set(1, "AMS") // the small ISP moved

	uniform := fenrir.Gower(a, b, nil, fenrir.PessimisticUnknown)
	// Weight the big ISP by the 256 /24 blocks it represents.
	w := fenrir.CountWeights(space, map[string]float64{"big-isp": 256}, 1)
	weighted := fenrir.Gower(a, b, w, fenrir.PessimisticUnknown)

	fmt.Printf("uniform:  %.2f\n", uniform)
	fmt.Printf("weighted: %.3f\n", weighted)
	// Output:
	// uniform:  0.50
	// weighted: 0.996
}

// ExampleTransition quantifies where networks went during a site drain.
func ExampleTransition() {
	space := fenrir.NewSpace([]string{"n1", "n2", "n3"})
	before := space.NewVector(0)
	before.Set(0, "STR")
	before.Set(1, "STR")
	before.Set(2, "NAP")
	after := space.NewVector(1)
	after.Set(0, "NAP")
	after.Set(1, fenrir.SiteError)
	after.Set(2, "NAP")

	tm := fenrir.Transition(before, after, nil)
	for _, f := range tm.LargestFlows(2) {
		fmt.Printf("%s -> %s: %.0f\n", f.From, f.To, f.Count)
	}
	// Output:
	// STR -> NAP: 1
	// STR -> err: 1
}

# Build, test, and benchmark entry points. `make test` is the tier-1
# gate (vet + full test suite); `make race` runs the analysis core, the
# fault layer, the UDP server, and the serve/snapshot layer under the
# race detector; `make bench` records the core perf trajectory to
# BENCH_core.json; `make check` adds per-package coverage plus the
# observability, fault-injection, and serve-and-checkpoint smoke tests
# on top of test + race.

GO ?= go

.PHONY: all build vet test race bench benchguard cover obs-smoke faults-smoke serve-smoke window-smoke shard-smoke trace-smoke explain-smoke history-smoke serve-load check clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/faults/... ./internal/udpserve/... ./internal/serve/... ./internal/snapshot/...

# The perf-critical benches: the similarity engine sweep (scalar vs
# bitset × serial vs auto — the scalar rows are the permanent "before"
# record next to the bitset "after"), the streaming append at depth, and
# the incremental threshold sweep. Output is parsed into
# BENCH_core.json; a failing bench run aborts loudly instead of writing
# an empty file.
bench:
	@$(GO) test -run '^$$' -bench 'SimilarityMatrix|ClusterAdaptiveIncremental|MonitorAppendHot' -benchmem . > bench.out 2>&1 \
		|| { cat bench.out >&2; rm -f bench.out; exit 1; }
	@./scripts/bench2json.sh < bench.out > BENCH_core.json.tmp \
		|| { rm -f bench.out BENCH_core.json.tmp; exit 1; }
	@mv BENCH_core.json.tmp BENCH_core.json
	@rm -f bench.out
	@cat BENCH_core.json

# Perf regression gate: fail if the serial T=1024 bitset similarity
# bench runs >15% slower than the committed BENCH_core.json baseline.
benchguard:
	./scripts/benchguard.sh

# Per-package coverage plus the total summary line.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1

# End-to-end observability check: run a scenario with -metrics/-manifest
# and assert the manifest names every pipeline stage.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end fault-injection check: run a scenario under a canned fault
# profile and assert the injection/quarantine counters land in the
# manifest.
faults-smoke:
	./scripts/faults_smoke.sh

# End-to-end serving check: kill a checkpointing daemon mid-stream,
# restart it from the snapshot dir, and assert the restored daemon's
# query output is byte-identical to an uninterrupted run.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end sliding-window check: kill a windowed checkpointing daemon
# mid-stream (evictions and live engine state in the snapshot), restart
# it, and assert the restored daemon's query output is byte-identical to
# an uninterrupted windowed run.
window-smoke:
	./scripts/window_smoke.sh

# End-to-end sharding check: a 4-shard daemon rebalances a tenant
# between shards mid-stream (the snapshot file physically moves between
# shard subdirectories), is hard-killed, restarts from the same state
# dir, and must answer all five deterministic query endpoints
# byte-identically to an uninterrupted 4-shard daemon that never
# rebalanced.
shard-smoke:
	./scripts/shard_smoke.sh

# End-to-end tracing check: run a scenario twice with -trace and assert
# both outputs are valid Chrome trace JSON with tile/sweep/ingest spans
# nested under the run root, and that the canonical trees (timestamps
# stripped) are identical across same-seed runs.
trace-smoke:
	./scripts/trace_smoke.sh

# End-to-end provenance check: run the groot scenario (which drains the
# STR site) with -explain and assert every change event carries a
# verdict, the first drain's top flow names STR, and the repeated drain
# is labeled a recurrence of the earlier drained mode.
explain-smoke:
	./scripts/explain_smoke.sh

# End-to-end self-observation check: a daemon with fast history sampling
# and a seeded tight burn-rate rule; malformed ingest fires the alert,
# clean traffic resolves it, /v1/query serves windowed functions, and
# the shutdown manifest carries the alerts block.
history-smoke:
	./scripts/history_smoke.sh

# Concurrent-load check (not part of `check`; slower): N writers + N
# contended writers + readers against a -race daemon build. Writes
# throughput and admission-latency quantiles to BENCH_serve.json.
serve-load:
	./scripts/serve_load.sh

check: test race cover obs-smoke faults-smoke serve-smoke window-smoke shard-smoke trace-smoke explain-smoke history-smoke benchguard

clean:
	rm -f BENCH_core.json BENCH_core.json.tmp bench.out cover.out

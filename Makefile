# Build, test, and benchmark entry points. `make test` is the tier-1
# gate (vet + full test suite); `make race` runs the analysis core under
# the race detector (the similarity engine is the only concurrent hot
# path); `make bench` records the core perf trajectory to BENCH_core.json.

GO ?= go

.PHONY: all build vet test race bench clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

# The perf-critical benches: the parallel similarity engine sweep and the
# incremental threshold sweep. Output is parsed into BENCH_core.json.
bench:
	$(GO) test -run '^$$' -bench 'SimilarityMatrixParallel|ClusterAdaptiveIncremental|SimilarityMatrixScaling' -benchmem . \
		| ./scripts/bench2json.sh > BENCH_core.json
	@cat BENCH_core.json

clean:
	rm -f BENCH_core.json

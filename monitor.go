package fenrir

import (
	"fenrir/internal/core"
)

// Monitor re-exports the streaming pipeline: append observations as they
// arrive, get change events immediately, and query the current routing
// mode without batch recomputation. Each append packs the new vector
// into bit-planes once and extends the Φ history with popcount kernels
// — O(history·networks/64) words per observation, with change detection
// advanced incrementally rather than replayed over the full history.
// Monitor is safe for concurrent use; poll Snapshot for live ingest
// statistics, or attach a Registry with Instrument. See
// examples/monitoring.
type Monitor = core.Monitor

// MonitorSnapshot is a point-in-time view of a monitor's ingest and
// detection statistics.
type MonitorSnapshot = core.MonitorSnapshot

// MonitorOptions is the full monitor configuration, including the
// sliding-window bound (Window) and the online mode engine's sweep
// settings (Adaptive).
type MonitorOptions = core.MonitorOptions

// NewMonitor starts a streaming monitor over a space. w may be nil for
// uniform weights; detect tunes the change criterion.
func NewMonitor(space *Space, sched Schedule, w []float64, mode UnknownMode, detect core.DetectOptions) *Monitor {
	return core.NewMonitor(space, sched, w, mode, detect)
}

// NewBoundedMonitor starts a monitor with explicit options. With
// opts.Window = W the monitor retains only the newest W observations —
// older epochs are evicted with exact Φ row retirement, so memory stays
// bounded by the window while events and LiveModes answers remain
// byte-identical to a monitor that only ever saw the retained suffix.
func NewBoundedMonitor(space *Space, sched Schedule, opts MonitorOptions) *Monitor {
	return core.NewMonitorOpts(space, sched, opts)
}

// DefaultDetectOptions re-exports the detector defaults used in the §3
// validation.
var DefaultDetectOptions = core.DefaultDetectOptions

// DefaultAdaptiveOptions re-exports the §2.6.2 clustering defaults.
var DefaultAdaptiveOptions = core.DefaultAdaptiveOptions

package fenrir

import (
	"fenrir/internal/core"
	"fenrir/internal/serve"
	"fenrir/internal/snapshot"
)

// ServeConfig configures the long-running monitoring daemon: checkpoint
// directory, queue bounds, shard count, metrics registry, and the fault
// seam. See DESIGN.md §8 and §15.
type ServeConfig = serve.Config

// ServeServer hosts named Monitor tenants behind the daemon HTTP API
// (`fenrir -serve`): POST observations in, GET modes, events, heatmap
// rows, transition matrices, and largest flows back out. Tenants are
// partitioned across ServeConfig.Shards in-process shards by consistent
// hash; POST /v1/admin/rebalance moves one between shards with
// byte-identical query answers across the move.
type ServeServer = serve.Server

// NewServeServer builds a daemon server, warm-restarting any tenants
// checkpointed in cfg.SnapshotDir.
var NewServeServer = serve.New

// TenantSpec and Observation are the daemon's wire types: the PUT
// tenant-creation body and the POST observation body.
type TenantSpec = serve.TenantSpec
type Observation = serve.Observation

// MonitorState is a complete export of a Monitor — configuration,
// history, the triangular Φ values bit for bit, and ingest statistics.
type MonitorState = core.MonitorState

// RestoreMonitor rebuilds a monitor from an exported state; subsequent
// appends continue exactly where the exported monitor stopped.
var RestoreMonitor = core.RestoreMonitor

// SaveMonitor / LoadMonitor checkpoint a monitor to the versioned,
// CRC-framed snapshot file format (atomic same-directory rename on
// write). Encoding is deterministic: the same state always produces
// identical bytes.
var (
	SaveMonitor = snapshot.SaveMonitor
	LoadMonitor = snapshot.LoadMonitor
)

// SaveSeriesSnapshot / LoadSeriesSnapshot checkpoint an observation
// series in the binary snapshot format (SaveSeries/LoadSeries remain
// the portable CSV dataset codec).
var (
	SaveSeriesSnapshot = snapshot.SaveSeries
	LoadSeriesSnapshot = snapshot.LoadSeries
)

package fenrir

import (
	"strings"
	"testing"
	"time"
)

func testSchedule(n int) Schedule {
	return NewSchedule(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, n)
}

// buildSeries makes a series with two modes and some noise/unknowns, the
// shape a real user's data has.
func buildSeries(t *testing.T) *Series {
	t.Helper()
	nets := make([]string, 100)
	for i := range nets {
		nets[i] = "net" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	space := NewSpace(nets)
	var vectors []*Vector
	for e := 0; e < 30; e++ {
		v := space.NewVector(Epoch(e))
		for i := 0; i < 100; i++ {
			switch {
			case (e*31+i)%17 == 0: // scattered one-shot losses
			case e < 15:
				v.Set(i, "LAX")
			default:
				if i < 40 {
					v.Set(i, "LAX")
				} else {
					v.Set(i, "AMS")
				}
			}
		}
		vectors = append(vectors, v)
	}
	return NewSeries(space, testSchedule(30), vectors)
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a := Analyze(buildSeries(t), DefaultAnalysisOptions())
	big := 0
	for _, m := range a.Modes.Modes {
		if len(m.Epochs) >= 5 {
			big++
		}
	}
	if big != 2 {
		t.Fatalf("major modes = %d (of %d), want 2", big, len(a.Modes.Modes))
	}
	if len(a.Changes) != 1 || a.Changes[0].At != 15 {
		t.Fatalf("changes = %+v, want one at epoch 15", a.Changes)
	}
	if a.Coverage < 0.9 {
		t.Fatalf("coverage after interpolation = %.2f", a.Coverage)
	}
	rep := a.Report()
	for _, want := range []string{"mode (i)", "mode (ii)", "heatmap", "change at epoch 15"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(a.StackPlot(), "epoch,AMS,LAX") {
		t.Error("stack plot header wrong")
	}
}

func TestAnalyzeWithoutCleaning(t *testing.T) {
	opts := DefaultAnalysisOptions()
	opts.Clean = false
	a := Analyze(buildSeries(t), opts)
	// Raw coverage is below the cleaned one (losses stay unknown).
	if a.Coverage > 0.95 {
		t.Fatalf("raw coverage = %.2f, expected losses to remain", a.Coverage)
	}
}

func TestAnalyzeMicroCatchmentSuppression(t *testing.T) {
	nets := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	space := NewSpace(nets)
	var vectors []*Vector
	for e := 0; e < 6; e++ {
		v := space.NewVector(Epoch(e))
		for i := 0; i < 9; i++ {
			v.Set(i, "BIG")
		}
		v.Set(9, "TINY")
		vectors = append(vectors, v)
	}
	opts := DefaultAnalysisOptions()
	opts.MicroCatchmentShare = 0.2
	a := Analyze(NewSeries(space, testSchedule(6), vectors), opts)
	if len(a.Suppressed) != 1 || a.Suppressed[0] != "TINY" {
		t.Fatalf("suppressed = %v", a.Suppressed)
	}
	if agg := a.Series.Vectors[0].Aggregate(); agg[SiteOther] != 1 {
		t.Fatalf("aggregate after suppression = %v", agg)
	}
}

func TestFacadeGowerAndTransition(t *testing.T) {
	space := NewSpace([]string{"x", "y"})
	a := space.NewVector(0)
	b := space.NewVector(1)
	a.Set(0, "a")
	a.Set(1, "a")
	b.Set(0, "a")
	b.Set(1, "b")
	if phi := Gower(a, b, nil, PessimisticUnknown); phi != 0.5 {
		t.Fatalf("Gower = %v", phi)
	}
	if phi := Gower(a, b, CountWeights(space, map[string]float64{"x": 3}, 1), PessimisticUnknown); phi != 0.75 {
		t.Fatalf("weighted Gower = %v", phi)
	}
	tm := Transition(a, b, nil)
	if tm.At("a", "b") != 1 || tm.At("a", "a") != 1 {
		t.Fatalf("transition cells wrong")
	}
	w := UniformWeights(space)
	if len(w) != 2 || w[0] != 1 {
		t.Fatalf("UniformWeights = %v", w)
	}
}

package fenrir

import (
	"net/http"

	"fenrir/internal/obs"
)

// Observability re-exports: the zero-dependency instrumentation layer
// from internal/obs, for users who want the same metrics, spans, and
// manifests the fenrir CLI produces (see DESIGN.md §6).
//
// Everything tolerates a nil *Registry: instrumented code paths then
// run exactly as if no instrumentation existed, so libraries can
// instrument unconditionally and let callers opt in.
type (
	// Registry holds named counters, gauges, and histograms plus the
	// stage-span log.
	Registry = obs.Registry
	// Span measures one pipeline stage (duration, items, workers).
	Span = obs.Span
	// StageRecord is one completed span as reported by StageSummary.
	StageRecord = obs.StageRecord
	// Manifest is the structured record of one pipeline run.
	Manifest = obs.Manifest
	// RuntimeSampler tracks peak goroutine and heap usage.
	RuntimeSampler = obs.RuntimeSampler
	// ObsServer serves /metrics, /debug/vars, and /debug/pprof.
	ObsServer = obs.Server
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// MetricsHandler returns an http.Handler rendering the registry in
// Prometheus text exposition format, for mounting on an existing mux.
func MetricsHandler(r *Registry) http.Handler { return obs.Handler(r) }

// NewObsServer binds addr (":0" picks a free port) and serves /metrics,
// /debug/vars, and /debug/pprof/ in the background.
func NewObsServer(addr string, r *Registry) (*ObsServer, error) { return obs.NewServer(addr, r) }

// StartRuntimeSampler begins peak goroutine/heap sampling; interval
// <= 0 defaults to 25ms. Stop returns the peaks.
var StartRuntimeSampler = obs.StartRuntimeSampler

// WriteManifest / LoadManifest round-trip run manifests as indented
// JSON.
var (
	WriteManifest = obs.WriteManifest
	LoadManifest  = obs.LoadManifest
)

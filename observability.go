package fenrir

import (
	"net/http"
	"time"

	"fenrir/internal/obs"
	"fenrir/internal/obs/history"
)

// Observability re-exports: the zero-dependency instrumentation layer
// from internal/obs, for users who want the same metrics, spans, and
// manifests the fenrir CLI produces (see DESIGN.md §6).
//
// Everything tolerates a nil *Registry: instrumented code paths then
// run exactly as if no instrumentation existed, so libraries can
// instrument unconditionally and let callers opt in.
type (
	// Registry holds named counters, gauges, and histograms plus the
	// stage-span log.
	Registry = obs.Registry
	// Span measures one pipeline stage (duration, items, workers).
	Span = obs.Span
	// StageRecord is one completed span as reported by StageSummary.
	StageRecord = obs.StageRecord
	// Manifest is the structured record of one pipeline run.
	Manifest = obs.Manifest
	// RuntimeSampler tracks peak goroutine and heap usage.
	RuntimeSampler = obs.RuntimeSampler
	// ObsServer serves /metrics, /debug/vars, /debug/pprof, /debug/trace,
	// and /debug/events.
	ObsServer = obs.Server
	// Attr is one key/value attribute on a span or flight event.
	Attr = obs.Attr
	// TraceRecord is one completed span in the trace ring.
	TraceRecord = obs.TraceRecord
	// Event is one structured entry in the flight recorder.
	Event = obs.Event
	// FlightRecorder is the bounded in-memory ring behind Registry.Logger.
	FlightRecorder = obs.FlightRecorder
	// FloatCounter is a monotonically increasing float64 counter.
	FloatCounter = obs.FloatCounter
	// HistogramSummary is a histogram snapshot with p50/p90/p99 quantiles.
	HistogramSummary = obs.HistogramSummary
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// MetricsHandler returns an http.Handler rendering the registry in
// Prometheus text exposition format, for mounting on an existing mux.
func MetricsHandler(r *Registry) http.Handler { return obs.Handler(r) }

// NewObsServer binds addr (":0" picks a free port) and serves /metrics,
// /debug/vars, and /debug/pprof/ in the background.
func NewObsServer(addr string, r *Registry) (*ObsServer, error) { return obs.NewServer(addr, r) }

// StartRuntimeSampler begins peak goroutine/heap sampling; interval
// <= 0 defaults to 25ms. Stop returns the peaks.
var StartRuntimeSampler = obs.StartRuntimeSampler

// WriteManifest / LoadManifest round-trip run manifests as indented
// JSON.
var (
	WriteManifest = obs.WriteManifest
	LoadManifest  = obs.LoadManifest
)

// TraceHandler serves the registry's trace tree as Chrome trace-event
// JSON (load the result in Perfetto or chrome://tracing), and
// EventsHandler drains the flight recorder ({"events": [...]}, newest
// last, ?n=N for the most recent N). Both handle a nil registry.
var (
	TraceHandler  = obs.TraceHandler
	EventsHandler = obs.EventsHandler
)

// WriteTraceFile writes the registry's trace tree to path as Chrome
// trace-event JSON. The export is canonical: sibling order and span ids
// are deterministic for a given run shape, so two same-seed runs differ
// only in timestamps.
var WriteTraceFile = obs.WriteTraceFile

// ValidateMetricName reports whether a metric name (with optional
// {label="value"} block) is well-formed; registration panics on names
// that fail it.
var ValidateMetricName = obs.ValidateMetricName

// Telemetry history re-exports (internal/obs/history, DESIGN.md §16):
// the in-process time-series store and alert engine the daemon uses to
// watch itself. All of it tolerates a nil *HistoryStore.
type (
	// HistoryStore samples a Registry into per-series ring buffers and
	// evaluates alert rules after every tick.
	HistoryStore = history.Store
	// HistoryConfig tunes a HistoryStore: interval, retention, rules,
	// and an injectable clock for deterministic tests.
	HistoryConfig = history.Config
	// AlertRule is one declarative threshold or burn-rate alert.
	AlertRule = history.Rule
	// AlertStatus is one rule's externally visible state.
	AlertStatus = history.AlertStatus
	// HistoryResult is one evaluated history query.
	HistoryResult = history.QueryResult
	// AlertsSummary is the manifest rollup of a run's alert activity.
	AlertsSummary = obs.AlertsSummary
)

// NewHistoryStore builds a history store over reg; call Start for the
// background sampler or Tick to sample synchronously.
func NewHistoryStore(reg *Registry, cfg HistoryConfig) *HistoryStore {
	return history.New(reg, cfg)
}

// LoadAlertRules reads and validates a JSON array of alert rules (the
// `fenrir -alert-rules` file format).
var LoadAlertRules = history.LoadRules

// QueryHistory evaluates fn ("latest", "delta", "rate", "max_over_time")
// over the newest samples of metric within rng (0 = whole window). stat
// selects a histogram rollup ("count", "sum", "p50", "p90", "p99");
// leave it empty for plain series. ok is false on an unknown fn or an
// unknown/empty series.
func QueryHistory(s *HistoryStore, metric, stat, fn string, rng time.Duration) (HistoryResult, bool) {
	f, ok := history.ParseFn(fn)
	if !ok {
		return HistoryResult{}, false
	}
	return s.Query(metric, stat, f, rng)
}

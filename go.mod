module fenrir

go 1.22

// Quickstart: run the Fenrir analysis pipeline on hand-made observations.
//
// This is the smallest complete use of the public API: you bring per-epoch
// catchment observations for a set of networks (here, fabricated for a
// three-site anycast service), and Fenrir tells you how similar routing is
// over time, which routing modes exist, and when routing changed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"fenrir"
)

func main() {
	// The networks we observe: forty /24 blocks.
	var networks []string
	for i := 0; i < 40; i++ {
		networks = append(networks, fmt.Sprintf("203.0.%d.0/24", i))
	}
	space := fenrir.NewSpace(networks)

	// Thirty daily observations. For the first twenty days networks split
	// between LAX and AMS by geography; on day 20 the operator drains LAX
	// and its clients move to AMS; a few observations are missing (probe
	// loss), which the pipeline interpolates.
	sched := fenrir.NewSchedule(time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, 30)
	var vectors []*fenrir.Vector
	for day := 0; day < 30; day++ {
		v := space.NewVector(fenrir.Epoch(day))
		for i := range networks {
			if (day*7+i)%19 == 0 {
				continue // one-shot probe loss: stays unknown
			}
			switch {
			case day >= 20: // after the drain everyone is at AMS
				v.Set(i, "AMS")
			case i < 25:
				v.Set(i, "LAX")
			default:
				v.Set(i, "AMS")
			}
		}
		vectors = append(vectors, v)
	}

	series := fenrir.NewSeries(space, sched, vectors)
	analysis := fenrir.Analyze(series, fenrir.DefaultAnalysisOptions())

	fmt.Printf("coverage after cleaning: %.1f%%\n\n", analysis.Coverage*100)
	fmt.Print(analysis.Report())

	// Quantify the drain with a transition matrix: where did LAX's
	// networks go between day 19 and day 21?
	before := analysis.Series.At(19)
	after := analysis.Series.At(21)
	tm := fenrir.Transition(before, after, nil)
	fmt.Printf("\nnetworks that moved LAX->AMS: %.0f\n", tm.At("LAX", "AMS"))
	fmt.Printf("similarity across the drain:  %.2f\n",
		fenrir.Gower(before, after, nil, fenrir.PessimisticUnknown))
}

// Website catchment comparison: run both website scenarios — the
// churn-heavy hypergiant and the stable seven-site non-profit — and
// contrast their similarity structure, the two ends of the spectrum §4.3
// of the paper examines.
//
//	go run ./examples/website
package main

import (
	"fmt"

	"fenrir"
	"fenrir/internal/report"
)

func main() {
	gcfg := fenrir.DefaultGoogleConfig(5)
	gcfg.Days2024 = 28 // one month is enough to see the weekly blocks
	google, err := fenrir.RunGoogle(gcfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("== hypergiant front-ends (Google-style) ==")
	fmt.Print(report.Heatmap(google.Matrix, 31))
	fmt.Printf("within-week Phi %.2f | adjacent-week Phi %.2f | 2013-vs-2024 Phi %.3f\n\n",
		google.WithinWeekPhi, google.CrossWeekPhi, google.CrossEraPhi)

	wiki, err := fenrir.RunWikipedia(fenrir.DefaultWikipediaConfig(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("== seven-site non-profit (Wikipedia-style) ==")
	fmt.Print(report.Heatmap(wiki.Matrix, 42))
	fmt.Print(report.ModesSummary(wiki.Modes))
	fmt.Printf("codfw: %d prefixes before drain, %d during, %d after restore (%.0f%% returned)\n",
		wiki.CodfwBefore, wiki.CodfwDuring, wiki.CodfwAfter, wiki.ReturnedFraction*100)

	fmt.Println("\nThe contrast is the paper's point: the same pipeline quantifies a")
	fmt.Println("service that reshuffles clients weekly and one whose routing holds")
	fmt.Println("at ~0.94 similarity for weeks — and for both, any deviation from")
	fmt.Println("the established mode is immediately visible and quantifiable.")
}

// Live monitoring and response: stream anycast observations into a
// Fenrir monitor, catch a change event the moment it happens, and use a
// traffic-engineering playbook to plan the response — the full
// detect → diagnose → act loop the paper envisions for operators.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"time"

	"fenrir"
	"fenrir/internal/astopo"
	"fenrir/internal/bgpsim"
	"fenrir/internal/dataplane"
	"fenrir/internal/measure/verfploeter"
	"fenrir/internal/netaddr"
	"fenrir/internal/playbook"
)

func main() {
	// Build a small world with a two-site anycast service.
	gen := astopo.DefaultGenConfig(21)
	gen.StubsPerRegion = 15
	g := astopo.Generate(gen)
	var t2NA, t2EU astopo.ASN
	for _, a := range g.ASNs() {
		as := g.AS(a)
		if as.Tier != astopo.Tier2 {
			continue
		}
		if as.Region.Name == "NA" && t2NA == 0 {
			t2NA = a
		}
		if as.Region.Name == "EU" && t2EU == 0 {
			t2EU = a
		}
	}
	svc := bgpsim.NewService("dns", netaddr.MustParsePrefix("199.9.14.0/24"))
	svc.AddSite("LAX", t2NA)
	svc.AddSite("AMS", t2EU)
	cfg := dataplane.DefaultConfig(21)
	cfg.MeanResponsiveness = 1
	cfg.LossRate = 0
	net := dataplane.NewNet(g, nil, cfg)
	net.AddService(svc, nil)

	hitlist := g.RoutableBlocks()
	mapper := verfploeter.NewMapper(net, "dns", hitlist)
	space := mapper.Space()

	sched := fenrir.NewSchedule(time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC), 24*time.Hour, 60)
	mon := fenrir.NewMonitor(space, sched, nil, fenrir.PessimisticUnknown, fenrir.DefaultDetectOptions())

	// Stream 30 daily censuses; on day 20 a third-party change (the EU
	// site's transit loses a tier-1 uplink) shifts catchments without any
	// operator action.
	for day := 0; day < 30; day++ {
		if day == 20 {
			provider := g.AS(t2EU).Providers[0]
			g.RemoveProviderCustomer(provider, t2EU)
			net.Refresh()
			fmt.Printf("day %d: (silent third-party event upstream of AMS)\n", day)
		}
		v, err := mapper.Census(space, fenrir.Epoch(day))
		if err != nil {
			panic(err)
		}
		ev, changed, err := mon.Append(v)
		if err != nil {
			panic(err)
		}
		if changed {
			fmt.Printf("day %d: CHANGE detected — Phi dropped to %.2f (baseline %.2f)\n",
				int(ev.At), ev.Phi, ev.Baseline)
		}
		// An operator dashboard would poll Snapshot from another
		// goroutine; here we print it every ten days.
		if (day+1)%10 == 0 {
			snap := mon.Snapshot()
			fmt.Printf("day %d: monitor health: %d appends, %d events, mean ingest %v\n",
				day, snap.Appends, snap.Events, snap.MeanIngest().Round(time.Microsecond))
		}
	}

	final := mon.Snapshot()
	fmt.Printf("\nfinal: %d observations held, last event at epoch %d, total ingest %v\n",
		final.History, int(final.LastEvent), final.TotalIngest.Round(time.Millisecond))

	cur := mon.CurrentMode(fenrir.DefaultAdaptiveOptions())
	fmt.Printf("\ncurrent mode: #%d with %d observations across %d range(s)\n",
		cur.ID, len(cur.Epochs), len(cur.Ranges))

	// The operator responds: plan prepending that rebalances the two
	// sites under the new (degraded) topology.
	plan, err := playbook.Optimize(g, nil, svc, g.ASNs(),
		playbook.EvenObjective([]string{"LAX", "AMS"}), playbook.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("playbook: balance deviation %.2f -> %.2f with prepends %v (%d BGP evaluations)\n",
		plan.Baseline, plan.Score, plan.Prepends, plan.Evaluations)
	playbook.Apply(svc, plan)
	net.Refresh()
	fmt.Println("plan deployed; the next monitor appends will confirm the new mode")
}

// Enterprise routing-cone analysis: run the USC-style multi-homed
// enterprise scenario, detect the reconfiguration from the heatmap, and
// explain it with the Sankey flow tables — the workflow §4.1 of the paper
// walks through.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"sort"

	"fenrir"
	"fenrir/internal/report"
)

func main() {
	cfg := fenrir.DefaultUSCConfig(11)
	res, err := fenrir.RunUSC(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("== eight months of enterprise egress, catchments at hop 3 ==")
	fmt.Print(report.ModesSummary(res.Modes))
	fmt.Print(report.Heatmap(res.Matrix, 50))

	// The stack view: how many destination networks each hop-3 provider
	// carries, before and after the change.
	fmt.Println("\nhop-3 provider shares:")
	printShares("  before", res.Hop3Before)
	printShares("  after ", res.Hop3After)

	// The Sankey views (Figures 7/8): whole flow paths, hops 1-4.
	fmt.Println()
	fmt.Print(report.Sankey(res.FlowsBefore, "flows before the reconfiguration"))
	fmt.Println()
	fmt.Print(report.Sankey(res.FlowsAfter, "flows after the reconfiguration"))
}

func printShares(label string, agg map[string]int) {
	total := 0
	for _, n := range agg {
		total += n
	}
	type row struct {
		as string
		n  int
	}
	var rows []row
	for as, n := range agg {
		rows = append(rows, row{as, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("%s:", label)
	for i, r := range rows {
		if i >= 4 {
			break
		}
		fmt.Printf("  %s %.0f%%", r.as, 100*float64(r.n)/float64(total))
	}
	fmt.Println()
}

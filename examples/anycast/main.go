// Anycast monitoring walk-through: run the B-Root-style scenario on the
// simulated Internet and read it the way a DNS operator would — watch the
// mode summary for structure, drill into specific events with transition
// matrices, and correlate with latency.
//
//	go run ./examples/anycast
package main

import (
	"fmt"

	"fenrir"
	"fenrir/internal/report"
)

func main() {
	cfg := fenrir.DefaultBRootConfig(7)
	res, err := fenrir.RunBRoot(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("== five years of B-Root-style anycast catchments ==")
	fmt.Print(report.ModesSummary(res.Modes))
	fmt.Println()
	fmt.Print(report.Heatmap(res.Matrix, 50))

	// Drill into the operator's biggest intervention: the site additions.
	add := res.Events["add-sites"]
	before := res.Series.At(add - 1)
	after := res.Series.At(add + 1)
	tm := fenrir.Transition(before, after, nil)
	fmt.Println("\nlargest flows when SIN/IAD/AMS were added:")
	for _, f := range tm.LargestFlows(5) {
		fmt.Printf("  %6.0f networks: %s -> %s\n", f.Count, f.From, f.To)
	}

	// Latency: the p90-per-site series an operator checks after every
	// routing change (Figure 4 in the paper).
	fmt.Println("\nper-site p90 latency (one row per collection epoch):")
	fmt.Print(trim(report.LatencyCSV(res.Latency), 12))
}

// trim keeps the first n lines of a long CSV for display.
func trim(s string, n int) string {
	out := ""
	count := 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		if count++; count >= n {
			out += "...\n"
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
